#ifndef JIM_CORE_SELECTION_INFERENCE_H_
#define JIM_CORE_SELECTION_INFERENCE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/example.h"
#include "core/join_predicate.h"
#include "lattice/partition.h"
#include "relational/relation.h"
#include "util/status.h"

namespace jim::core {

/// EXTENSION beyond the demo paper: inference of join queries *with
/// constant selections* —
///
///   SELECT * FROM T WHERE To = City AND Airline = 'AF'
///
/// The hypothesis space becomes the product of the partition lattice
/// (equalities between attributes) and, per attribute, an optional constant
/// constraint. The whole membership-query machinery of JIM carries over
/// because the product is again a lattice: a query q = (θ, C) selects t iff
/// θ ≤ Part(t) and every (attribute, constant) of C matches t. Weaker
/// queries (coarser θ, fewer constants) select more tuples, the knowledge
/// extracted from labels is again "meet with the maximal consistent
/// hypothesis", and uninformative tuples gray out exactly as before.
///
/// The demo paper's query class is the C = ∅ slice of this space.
class SelectionJoinQuery {
 public:
  /// The unconstrained query (selects everything).
  explicit SelectionJoinQuery(rel::Schema schema);

  SelectionJoinQuery(rel::Schema schema, lat::Partition partition,
                     std::map<size_t, rel::Value> constants);

  /// Parses "To=City && Airline='AF' && Discount=42". A conjunct whose
  /// right-hand side is a single-quoted string or a number literal becomes a
  /// constant selection; otherwise both sides must be attribute names.
  static util::StatusOr<SelectionJoinQuery> Parse(const rel::Schema& schema,
                                                  std::string_view text);

  const rel::Schema& schema() const { return schema_; }
  const lat::Partition& partition() const { return partition_; }
  const std::map<size_t, rel::Value>& constants() const { return constants_; }

  size_t NumJoinConstraints() const { return partition_.Rank(); }
  size_t NumSelectionConstraints() const { return constants_.size(); }

  bool Selects(const rel::Tuple& tuple) const;

  /// "To≈City ∧ Airline='AF'"; "(no constraint)" when empty.
  std::string ToString() const;

  friend bool operator==(const SelectionJoinQuery& a,
                         const SelectionJoinQuery& b) {
    return a.partition_ == b.partition_ && a.constants_ == b.constants_;
  }

 private:
  rel::Schema schema_;
  lat::Partition partition_;
  /// attribute index -> required constant. Values compare with Equals.
  std::map<size_t, rel::Value> constants_;
};

/// Inference state over the product lattice, mirroring InferenceState:
/// the maximal consistent hypothesis (θ_P, C_P) plus the antichain of
/// maximal forbidden hypotheses contributed by negative examples.
class SelectionInferenceState {
 public:
  explicit SelectionInferenceState(size_t num_attributes);

  /// The maximal consistent hypothesis; the canonical answer on termination.
  /// Before any positive example the partition is ⊤ and every attribute is
  /// (formally) constant-constrained; both relax as positives arrive.
  const lat::Partition& theta_p() const { return theta_p_; }
  const std::optional<std::map<size_t, rel::Value>>& constants_p() const {
    return constants_p_;
  }

  /// True iff (θ, C) is consistent with every label so far.
  bool IsConsistent(const lat::Partition& theta,
                    const std::map<size_t, rel::Value>& constants) const;

  TupleClassification Classify(const rel::Tuple& tuple) const;

  /// Incorporates a label; kFailedPrecondition on contradiction.
  util::Status ApplyLabel(const rel::Tuple& tuple, Label label);

  /// The canonical result as a query over `schema` (requires at least one
  /// positive example, otherwise the maximal hypothesis is degenerate).
  util::StatusOr<SelectionJoinQuery> Result(const rel::Schema& schema) const;

 private:
  /// A forbidden zone: hypotheses (θ, C) with θ ≤ partition and C ⊆
  /// constants are ruled out.
  struct Forbidden {
    lat::Partition partition;
    std::map<size_t, rel::Value> constants;
  };

  /// The knowledge pair extracted from a tuple under the current state.
  struct Knowledge {
    lat::Partition partition;
    std::map<size_t, rel::Value> constants;
  };
  Knowledge KnowledgeFor(const rel::Tuple& tuple) const;

  static bool ConstantsSubsume(const std::map<size_t, rel::Value>& small,
                               const std::map<size_t, rel::Value>& big);

  size_t num_attributes_;
  lat::Partition theta_p_;
  /// nullopt encodes "no positive yet": every constant map is still live
  /// (the formal top of the selection lattice).
  std::optional<std::map<size_t, rel::Value>> constants_p_;
  std::vector<Forbidden> forbidden_;
};

/// Runs a complete membership-query session for a selection+join goal over
/// `relation` with a greedy pruning-lookahead questioner. Returns the number
/// of questions and whether the result selects exactly the goal's tuples.
struct SelectionSessionResult {
  size_t interactions = 0;
  std::optional<SelectionJoinQuery> result;
  bool identified_goal = false;
};
SelectionSessionResult RunSelectionSession(
    const std::shared_ptr<const rel::Relation>& relation,
    const SelectionJoinQuery& goal, uint64_t seed = 1);

}  // namespace jim::core

#endif  // JIM_CORE_SELECTION_INFERENCE_H_
