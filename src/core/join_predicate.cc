#include "core/join_predicate.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace jim::core {

JoinPredicate::JoinPredicate(rel::Schema schema)
    : schema_(std::move(schema)),
      partition_(lat::Partition::Singletons(schema_.num_attributes())) {}

JoinPredicate::JoinPredicate(rel::Schema schema, lat::Partition partition)
    : schema_(std::move(schema)), partition_(std::move(partition)) {
  JIM_CHECK_EQ(schema_.num_attributes(), partition_.num_elements());
}

util::StatusOr<JoinPredicate> JoinPredicate::Parse(const rel::Schema& schema,
                                                   std::string_view text) {
  // Normalize the conjunction separators to '&'.
  std::string normalized;
  normalized.reserve(text.size());
  for (size_t i = 0; i < text.size();) {
    // "∧" is the UTF-8 sequence E2 88 A7.
    if (i + 2 < text.size() && static_cast<unsigned char>(text[i]) == 0xE2 &&
        static_cast<unsigned char>(text[i + 1]) == 0x88 &&
        static_cast<unsigned char>(text[i + 2]) == 0xA7) {
      normalized.push_back('&');
      i += 3;
      continue;
    }
    // "≈" is the UTF-8 sequence E2 89 88.
    if (i + 2 < text.size() && static_cast<unsigned char>(text[i]) == 0xE2 &&
        static_cast<unsigned char>(text[i + 1]) == 0x89 &&
        static_cast<unsigned char>(text[i + 2]) == 0x88) {
      normalized.push_back('=');
      i += 3;
      continue;
    }
    normalized.push_back(text[i]);
    ++i;
  }
  // Textual "AND" (any case, token-delimited) -> '&'.
  std::string lowered = util::ToLower(normalized);
  std::string collapsed;
  for (size_t i = 0; i < normalized.size();) {
    if (i + 3 <= normalized.size() && lowered.compare(i, 3, "and") == 0 &&
        (i == 0 || std::isspace(static_cast<unsigned char>(normalized[i - 1]))) &&
        (i + 3 == normalized.size() ||
         std::isspace(static_cast<unsigned char>(normalized[i + 3])))) {
      collapsed.push_back('&');
      i += 3;
    } else {
      collapsed.push_back(normalized[i]);
      ++i;
    }
  }

  std::vector<std::pair<size_t, size_t>> pairs;
  for (const std::string& raw_conjunct : util::Split(collapsed, '&')) {
    const std::string_view conjunct = util::StripWhitespace(raw_conjunct);
    if (conjunct.empty()) continue;  // tolerate "a=b && && c=d" and "&&"
    const auto sides = util::Split(std::string(conjunct), '=');
    if (sides.size() != 2) {
      return util::InvalidArgumentError(
          "expected exactly one '=' in conjunct '" + std::string(conjunct) +
          "'");
    }
    const auto left = util::StripWhitespace(sides[0]);
    const auto right = util::StripWhitespace(sides[1]);
    // An unknown attribute name is malformed *input text*, not a missing
    // resource: report kInvalidArgument like every other parse failure
    // (kNotFound is reserved for absent files/relations, and callers route
    // on that distinction).
    const auto resolve = [&schema](std::string_view side)
        -> util::StatusOr<size_t> {
      auto index = schema.IndexOf(side);
      if (!index.ok()) {
        return util::InvalidArgumentError(
            "unknown attribute '" + std::string(side) +
            "' in join predicate (" + std::string(index.status().message()) +
            ")");
      }
      return index;
    };
    ASSIGN_OR_RETURN(size_t left_index, resolve(left));
    ASSIGN_OR_RETURN(size_t right_index, resolve(right));
    pairs.emplace_back(left_index, right_index);
  }
  ASSIGN_OR_RETURN(
      lat::Partition partition,
      lat::Partition::FromPairs(schema.num_attributes(), pairs));
  return JoinPredicate(schema, std::move(partition));
}

bool JoinPredicate::Selects(const rel::Tuple& tuple) const {
  JIM_DCHECK(tuple.size() == partition_.num_elements());
  // Every generator equality must hold; generators suffice because value
  // equality is transitive.
  for (const auto& [i, j] : partition_.GeneratorPairs()) {
    if (!tuple[i].Equals(tuple[j])) return false;
  }
  return true;
}

namespace {

/// Code-level generator-pair check shared by SelectsCodes and the
/// SelectedRows(TupleStore) scan (which hoists the pair extraction out of
/// its per-tuple loop).
bool SelectsCodesWithPairs(
    const std::vector<std::pair<size_t, size_t>>& pairs,
    const uint32_t* codes) {
  for (const auto& [i, j] : pairs) {
    if (codes[i] == rel::kNullCode || codes[i] != codes[j]) return false;
  }
  return true;
}

}  // namespace

bool JoinPredicate::SelectsCodes(const uint32_t* codes) const {
  return SelectsCodesWithPairs(partition_.GeneratorPairs(), codes);
}

util::DynamicBitset JoinPredicate::SelectedRows(
    const rel::Relation& relation) const {
  JIM_CHECK_EQ(relation.num_attributes(), partition_.num_elements());
  util::DynamicBitset selected(relation.num_rows());
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    if (Selects(relation.row(r))) selected.Set(r);
  }
  return selected;
}

util::DynamicBitset JoinPredicate::SelectedRows(const TupleStore& store) const {
  JIM_CHECK_EQ(store.num_attributes(), partition_.num_elements());
  const auto pairs = partition_.GeneratorPairs();
  std::vector<uint32_t> codes(store.num_attributes());
  util::DynamicBitset selected(store.num_tuples());
  for (size_t t = 0; t < store.num_tuples(); ++t) {
    store.TupleCodes(t, codes.data());
    if (SelectsCodesWithPairs(pairs, codes.data())) selected.Set(t);
  }
  return selected;
}

bool JoinPredicate::ContainedIn(const JoinPredicate& other) const {
  // *this demands at least other's equalities iff other's partition refines
  // ours... no: this ⊆ other (fewer results) iff this has MORE constraints,
  // i.e. other.partition_ ≤ this->partition_.
  return other.partition_.Refines(partition_);
}

std::string JoinPredicate::ToString() const {
  if (IsEmptyPredicate()) return "(empty predicate)";
  std::vector<std::string> parts;
  for (const auto& [i, j] : partition_.GeneratorPairs()) {
    parts.push_back(schema_.attribute(i).QualifiedName() + "\xE2\x89\x88" +
                    schema_.attribute(j).QualifiedName());
  }
  return util::Join(parts, " \xE2\x88\xA7 ");
}

std::string JoinPredicate::ToSqlWhere() const {
  if (IsEmptyPredicate()) return "TRUE";
  std::vector<std::string> parts;
  for (const auto& [i, j] : partition_.GeneratorPairs()) {
    parts.push_back(schema_.attribute(i).QualifiedName() + " = " +
                    schema_.attribute(j).QualifiedName());
  }
  return util::Join(parts, " AND ");
}

lat::Partition TuplePartition(const rel::Tuple& tuple) {
  const size_t n = tuple.size();
  std::vector<int> labels(n);
  // Group attributes by pairwise Equals. NULLs never group (Equals is false
  // for them), which is exactly SQL join semantics. Quadratic in n, which is
  // fine: n is the attribute count (small), not the tuple count.
  int next = 0;
  std::vector<bool> assigned(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (assigned[i]) continue;
    labels[i] = next;
    assigned[i] = true;
    if (!tuple[i].is_null()) {
      for (size_t j = i + 1; j < n; ++j) {
        if (!assigned[j] && tuple[i].Equals(tuple[j])) {
          labels[j] = next;
          assigned[j] = true;
        }
      }
    }
    ++next;
  }
  return lat::Partition::FromLabels(labels);
}

bool InstanceEquivalent(const rel::Relation& relation, const JoinPredicate& p1,
                        const JoinPredicate& p2) {
  return p1.SelectedRows(relation) == p2.SelectedRows(relation);
}

bool InstanceEquivalent(const TupleStore& store, const JoinPredicate& p1,
                        const JoinPredicate& p2) {
  return p1.SelectedRows(store) == p2.SelectedRows(store);
}

}  // namespace jim::core
