#include "core/speculation.h"

#include "util/logging.h"

namespace jim::core {

SpeculativeSession::SpeculativeSession(const InferenceEngine& engine)
    : engine_(engine),
      state_(engine.state()),
      sentinel_(engine.num_classes()),
      next_(engine.num_classes() + 1),
      prev_(engine.num_classes() + 1) {
  // Thread the live list through the informative worklist (ascending).
  uint32_t tail = static_cast<uint32_t>(sentinel_);
  for (size_t c : engine.InformativeClasses()) {
    next_[tail] = static_cast<uint32_t>(c);
    prev_[c] = tail;
    tail = static_cast<uint32_t>(c);
    ++num_live_;
  }
  next_[tail] = static_cast<uint32_t>(sentinel_);
  prev_[sentinel_] = tail;
}

std::vector<size_t> SpeculativeSession::LiveClasses() const {
  std::vector<size_t> live;
  live.reserve(num_live_);
  for (size_t c = FirstLive(); c != LiveEnd(); c = NextLive(c)) {
    live.push_back(c);
  }
  return live;
}

void SpeculativeSession::Apply(size_t class_id, Label label) {
  JIM_CHECK_LT(class_id, engine_.num_classes());
  JIM_CHECK(IsLive(class_id)) << "speculative label on a non-live class";
  // Park the pre-label state in the pooled frame for this depth; the
  // assignment reuses the frame's warmed capacity after the first visit.
  if (depth_ == frames_.size()) {
    frames_.push_back(Frame{state_, {}});
  } else {
    frames_[depth_].saved = state_;
    frames_[depth_].removed.clear();
  }
  Frame& frame = frames_[depth_];
  ++depth_;

  JIM_CHECK_OK(
      state_.ApplyLabel(engine_.tuple_class(class_id).partition, label));

  // The labeled class leaves first (its status is now settled), then one
  // walk of the remaining live list removes everything the new state
  // classifies as uninformative. Removal order is the trail; Undo replays it
  // backwards.
  Unlink(class_id);
  frame.removed.push_back(static_cast<uint32_t>(class_id));
  for (size_t c = FirstLive(); c != LiveEnd();) {
    const size_t next = NextLive(c);
    if (state_.ClassifyWith(engine_.tuple_class(c).partition, meet_tmp_,
                            scratch_) != TupleClassification::kInformative) {
      Unlink(c);
      frame.removed.push_back(static_cast<uint32_t>(c));
    }
    c = next;
  }
}

void SpeculativeSession::Undo() {
  JIM_CHECK_GT(depth_, size_t{0}) << "Undo with an empty trail";
  Frame& frame = frames_[--depth_];
  // Dancing links: each removed node kept its own pointers, so re-linking in
  // exact reverse removal order restores the list bit for bit.
  for (size_t i = frame.removed.size(); i-- > 0;) {
    Relink(frame.removed[i]);
  }
  state_.Swap(frame.saved);
}

InferenceEngine::LabelImpactPair SpeculativeSession::SimulateBoth(
    size_t class_id) {
  JIM_CHECK(IsLive(class_id));
  const lat::Partition& theta = state_.theta_p();
  // K_labeled = θ_P ∧ Part(c). No per-class cache here, so knowledge
  // partitions are materialized on the fly — same arithmetic as the engine's
  // SimulateLabelBothWith over its cached worklist, hence bitwise-identical
  // counts at depth 0.
  theta.MeetInto(engine_.tuple_class(class_id).partition, k_labeled_,
                 scratch_);

  InferenceEngine::LabelImpactPair impact;
  impact.positive.pruned_classes = impact.negative.pruned_classes = 1;
  impact.positive.pruned_tuples = impact.negative.pruned_tuples =
      engine_.tuple_class(class_id).size();
  for (size_t c = FirstLive(); c != LiveEnd(); c = NextLive(c)) {
    if (c == class_id) continue;
    theta.MeetInto(engine_.tuple_class(c).partition, k_other_, scratch_);
    const size_t members = engine_.tuple_class(c).size();
    if (k_other_.RefinesWith(k_labeled_, scratch_)) {
      ++impact.negative.pruned_classes;
      impact.negative.pruned_tuples += members;
    }
    if (k_labeled_.RefinesWith(k_other_, scratch_)) {
      ++impact.positive.pruned_classes;
      impact.positive.pruned_tuples += members;
    } else {
      k_labeled_.MeetInto(k_other_, meet_tmp_, scratch_);
      if (state_.negatives().DominatedBy(meet_tmp_, scratch_)) {
        ++impact.positive.pruned_classes;
        impact.positive.pruned_tuples += members;
      }
    }
  }
  return impact;
}

void SpeculativeSession::CheckInvariants() const {
  state_.CheckInvariants();
  // The list is one ascending cycle through the sentinel of length num_live.
  size_t count = 0;
  size_t last = sentinel_;
  for (size_t c = FirstLive(); c != LiveEnd(); c = NextLive(c)) {
    JIM_CHECK_LT(c, engine_.num_classes());
    JIM_CHECK_EQ(static_cast<size_t>(prev_[c]), last)
        << "live list prev/next disagree at class " << c;
    if (last != sentinel_) {
      JIM_CHECK_LT(last, c) << "live list not ascending";
    }
    last = c;
    JIM_CHECK_LE(++count, engine_.num_classes()) << "live list cycles";
  }
  JIM_CHECK_EQ(static_cast<size_t>(prev_[sentinel_]), last);
  JIM_CHECK_EQ(count, num_live_);
  // Live = engine-informative classes still informative under state().
  lat::Partition meet_tmp;
  lat::PartitionScratch scratch;
  for (size_t c : engine_.InformativeClasses()) {
    const bool expect_live =
        state_.ClassifyWith(engine_.tuple_class(c).partition, meet_tmp,
                            scratch) == TupleClassification::kInformative;
    JIM_CHECK_EQ(IsLive(c), expect_live)
        << "live list disagrees with classification for class " << c;
  }
}

}  // namespace jim::core
