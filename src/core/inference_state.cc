#include "core/inference_state.h"

#include <algorithm>

#include "lattice/enumeration.h"
#include "util/hash.h"
#include "util/logging.h"

namespace jim::core {

std::string_view TupleClassificationToString(TupleClassification c) {
  switch (c) {
    case TupleClassification::kForcedPositive:
      return "forced-positive";
    case TupleClassification::kForcedNegative:
      return "forced-negative";
    case TupleClassification::kInformative:
      return "informative";
  }
  return "?";
}

InferenceState::InferenceState(size_t num_attributes)
    : num_attributes_(num_attributes),
      theta_p_(lat::Partition::Top(num_attributes)) {}

bool InferenceState::IsConsistent(const lat::Partition& candidate) const {
  return candidate.Refines(theta_p_) && !negatives_.DominatedBy(candidate);
}

lat::Partition InferenceState::Knowledge(
    const lat::Partition& tuple_partition) const {
  return theta_p_.Meet(tuple_partition);
}

TupleClassification InferenceState::Classify(
    const lat::Partition& tuple_partition) const {
  const lat::Partition knowledge = Knowledge(tuple_partition);
  // All consistent θ refine θ_P; they all select t iff θ_P ≤ Part(t),
  // i.e. iff the meet did not lose anything.
  if (knowledge == theta_p_) return TupleClassification::kForcedPositive;
  // Some consistent θ selects t iff K (the maximal sub-θ_P predicate
  // selecting t) escapes every forbidden zone.
  if (negatives_.DominatedBy(knowledge)) {
    return TupleClassification::kForcedNegative;
  }
  return TupleClassification::kInformative;
}

util::Status InferenceState::ApplyLabel(const lat::Partition& tuple_partition,
                                        Label label) {
  const TupleClassification classification = Classify(tuple_partition);
  if (label == Label::kPositive) {
    if (classification == TupleClassification::kForcedNegative) {
      return util::FailedPreconditionError(
          "positive label contradicts earlier labels: no consistent join "
          "predicate selects this tuple");
    }
    has_positive_example_ = true;
    if (classification == TupleClassification::kForcedPositive) {
      return util::OkStatus();  // uninformative: nothing to learn
    }
    theta_p_ = Knowledge(tuple_partition);
    // Only the part of each forbidden zone below the new θ_P remains
    // meaningful; restricting also re-establishes antichain maximality.
    negatives_.RestrictTo(theta_p_);
    return util::OkStatus();
  }
  // Negative label.
  if (classification == TupleClassification::kForcedPositive) {
    return util::FailedPreconditionError(
        "negative label contradicts earlier labels: every consistent join "
        "predicate selects this tuple");
  }
  if (classification == TupleClassification::kForcedNegative) {
    return util::OkStatus();  // uninformative: nothing to learn
  }
  negatives_.Insert(Knowledge(tuple_partition));
  return util::OkStatus();
}

uint64_t InferenceState::CountConsistent(uint64_t limit) const {
  JIM_CHECK_LE(lat::CountRefinements(theta_p_), limit);
  uint64_t count = 0;
  lat::VisitRefinements(theta_p_, [this, &count](const lat::Partition& q) {
    if (!negatives_.DominatedBy(q)) ++count;
    return true;
  });
  return count;
}

TupleClassification InferenceState::ClassifyWith(
    const lat::Partition& tuple_partition, lat::Partition& meet_tmp,
    lat::PartitionScratch& scratch) const {
  // θ_P ∧ Part(t) == θ_P tested without materializing the meet.
  if (theta_p_.MeetEqualsLeft(tuple_partition, scratch)) {
    return TupleClassification::kForcedPositive;
  }
  theta_p_.MeetInto(tuple_partition, meet_tmp, scratch);
  if (negatives_.DominatedBy(meet_tmp, scratch)) {
    return TupleClassification::kForcedNegative;
  }
  return TupleClassification::kInformative;
}

void InferenceState::CheckInvariants() const {
  theta_p_.CheckInvariants();
  negatives_.CheckInvariants();
  JIM_CHECK_EQ(theta_p_.num_elements(), num_attributes_);
  if (!has_positive_example_) {
    JIM_CHECK(theta_p_ == lat::Partition::Top(num_attributes_))
        << "θ_P moved off ⊤ without a positive example";
  }
  for (const lat::Partition& m : negatives_.members()) {
    JIM_CHECK_EQ(m.num_elements(), num_attributes_);
    // Every forbidden zone is of the form θ_P ∧ Part(s) (and RestrictTo
    // re-clips on every θ_P shrink), so members always lie below θ_P —
    // strictly, or θ_P itself would be inconsistent.
    JIM_CHECK(m.StrictlyRefines(theta_p_))
        << "forbidden member " << m.ToString() << " not strictly below θ_P "
        << theta_p_.ToString();
  }
  // θ_P is the canonical answer; it must never be ruled out by a negative.
  JIM_CHECK(!negatives_.DominatedBy(theta_p_))
      << "θ_P " << theta_p_.ToString() << " is itself forbidden";
}

std::string InferenceState::CanonicalKey() const {
  return theta_p_.ToString() + "#" + negatives_.ToString();
}

InferenceState::StateKey InferenceState::MakeStateKey() const {
  StateKey key;
  const std::vector<lat::Partition>& members = negatives_.members();
  // Antichain members are ordered by rank; the key needs the same canonical
  // order as CanonicalKey (RGS-lexicographic), so sort indirection here.
  std::vector<const lat::Partition*> sorted;
  sorted.reserve(members.size());
  for (const lat::Partition& m : members) sorted.push_back(&m);
  std::sort(sorted.begin(), sorted.end(),
            [](const lat::Partition* a, const lat::Partition* b) {
              return *a < *b;
            });
  key.encoded.reserve((num_attributes_ + 1) * (members.size() + 1));
  key.encoded.insert(key.encoded.end(), theta_p_.labels().begin(),
                     theta_p_.labels().end());
  for (const lat::Partition* m : sorted) {
    key.encoded.push_back(-1);  // separator: never a valid RGS label
    key.encoded.insert(key.encoded.end(), m->labels().begin(),
                       m->labels().end());
  }
  key.hash = util::Fnv1a64(key.encoded.begin(), key.encoded.end());
  return key;
}

void InferenceState::Swap(InferenceState& other) noexcept {
  using std::swap;
  swap(num_attributes_, other.num_attributes_);
  swap(theta_p_, other.theta_p_);
  swap(negatives_, other.negatives_);
  swap(has_positive_example_, other.has_positive_example_);
}

}  // namespace jim::core
