#include "core/inference_state.h"

#include "lattice/enumeration.h"
#include "util/logging.h"

namespace jim::core {

std::string_view TupleClassificationToString(TupleClassification c) {
  switch (c) {
    case TupleClassification::kForcedPositive:
      return "forced-positive";
    case TupleClassification::kForcedNegative:
      return "forced-negative";
    case TupleClassification::kInformative:
      return "informative";
  }
  return "?";
}

InferenceState::InferenceState(size_t num_attributes)
    : num_attributes_(num_attributes),
      theta_p_(lat::Partition::Top(num_attributes)) {}

bool InferenceState::IsConsistent(const lat::Partition& candidate) const {
  return candidate.Refines(theta_p_) && !negatives_.DominatedBy(candidate);
}

lat::Partition InferenceState::Knowledge(
    const lat::Partition& tuple_partition) const {
  return theta_p_.Meet(tuple_partition);
}

TupleClassification InferenceState::Classify(
    const lat::Partition& tuple_partition) const {
  const lat::Partition knowledge = Knowledge(tuple_partition);
  // All consistent θ refine θ_P; they all select t iff θ_P ≤ Part(t),
  // i.e. iff the meet did not lose anything.
  if (knowledge == theta_p_) return TupleClassification::kForcedPositive;
  // Some consistent θ selects t iff K (the maximal sub-θ_P predicate
  // selecting t) escapes every forbidden zone.
  if (negatives_.DominatedBy(knowledge)) {
    return TupleClassification::kForcedNegative;
  }
  return TupleClassification::kInformative;
}

util::Status InferenceState::ApplyLabel(const lat::Partition& tuple_partition,
                                        Label label) {
  const TupleClassification classification = Classify(tuple_partition);
  if (label == Label::kPositive) {
    if (classification == TupleClassification::kForcedNegative) {
      return util::FailedPreconditionError(
          "positive label contradicts earlier labels: no consistent join "
          "predicate selects this tuple");
    }
    has_positive_example_ = true;
    if (classification == TupleClassification::kForcedPositive) {
      return util::OkStatus();  // uninformative: nothing to learn
    }
    theta_p_ = Knowledge(tuple_partition);
    // Only the part of each forbidden zone below the new θ_P remains
    // meaningful; restricting also re-establishes antichain maximality.
    negatives_.RestrictTo(theta_p_);
    return util::OkStatus();
  }
  // Negative label.
  if (classification == TupleClassification::kForcedPositive) {
    return util::FailedPreconditionError(
        "negative label contradicts earlier labels: every consistent join "
        "predicate selects this tuple");
  }
  if (classification == TupleClassification::kForcedNegative) {
    return util::OkStatus();  // uninformative: nothing to learn
  }
  negatives_.Insert(Knowledge(tuple_partition));
  return util::OkStatus();
}

uint64_t InferenceState::CountConsistent(uint64_t limit) const {
  JIM_CHECK_LE(lat::CountRefinements(theta_p_), limit);
  uint64_t count = 0;
  lat::VisitRefinements(theta_p_, [this, &count](const lat::Partition& q) {
    if (!negatives_.DominatedBy(q)) ++count;
    return true;
  });
  return count;
}

std::string InferenceState::CanonicalKey() const {
  return theta_p_.ToString() + "#" + negatives_.ToString();
}

}  // namespace jim::core
