#ifndef JIM_CORE_JOIN_PREDICATE_H_
#define JIM_CORE_JOIN_PREDICATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/tuple_store.h"
#include "lattice/partition.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "util/bitset.h"
#include "util/status.h"

namespace jim::core {

/// An n-ary equi-join predicate over the attributes of a schema.
///
/// Canonically a partition of the attribute set: attributes in the same
/// block are constrained to be pairwise equal. This captures arbitrary
/// conjunctive equality predicates — e.g. the paper's
///   Q1 = (To ≈ City)                 — partition {From|To,City|Airline|Discount}
///   Q2 = (To ≈ City ∧ Airline ≈ Discount)
/// A tuple t is *selected* iff its induced value partition coarsens the
/// predicate's partition: Selects(t) ⇔ partition() ≤ Part(t).
class JoinPredicate {
 public:
  /// The empty predicate (no constraints — selects every tuple).
  explicit JoinPredicate(rel::Schema schema);

  JoinPredicate(rel::Schema schema, lat::Partition partition);

  /// Parses "To=City && Airline=Discount" (also accepts "AND", "and", "∧",
  /// "&" and "≈" for "="; whitespace-insensitive). Attribute names may be
  /// bare or qualified. An empty string yields the empty predicate.
  static util::StatusOr<JoinPredicate> Parse(const rel::Schema& schema,
                                             std::string_view text);

  const rel::Schema& schema() const { return schema_; }
  const lat::Partition& partition() const { return partition_; }

  size_t num_attributes() const { return partition_.num_elements(); }

  /// Number of equality constraints (lattice rank of the partition).
  size_t NumConstraints() const { return partition_.Rank(); }

  bool IsEmptyPredicate() const { return partition_.IsSingletons(); }

  /// True iff `tuple` satisfies every equality (strict Value equality;
  /// NULLs never satisfy an equality).
  bool Selects(const rel::Tuple& tuple) const;

  /// Code-level Selects: `codes` are num_attributes() shared-dictionary
  /// codes of one tuple (see TupleStore). Identical to Selects on the
  /// decoded tuple — code equality is strict value equality and
  /// rel::kNullCode never matches — without materializing a Value.
  bool SelectsCodes(const uint32_t* codes) const;

  /// Bitset over `relation`'s rows: bit i set iff row i is selected.
  /// Requires the relation arity to match.
  util::DynamicBitset SelectedRows(const rel::Relation& relation) const;

  /// Same over a TupleStore, evaluated on integer codes (no decoding).
  util::DynamicBitset SelectedRows(const TupleStore& store) const;

  /// Containment: every tuple selected by *this is selected by `other`
  /// (on every possible instance). Holds iff other.partition ≤ this.partition.
  bool ContainedIn(const JoinPredicate& other) const;

  /// "To≈City ∧ Airline≈Discount" (generator pairs, attribute names);
  /// "(empty predicate)" when unconstrained.
  std::string ToString() const;

  /// SQL WHERE-clause rendering: "To = City AND Airline = Discount";
  /// "TRUE" when unconstrained.
  std::string ToSqlWhere() const;

  friend bool operator==(const JoinPredicate& a, const JoinPredicate& b) {
    return a.partition_ == b.partition_;
  }

 private:
  rel::Schema schema_;
  lat::Partition partition_;
};

/// The value-induced partition Part(t): attributes i, j are co-block iff
/// t[i].Equals(t[j]). Each NULL forms its own singleton (NULL ≠ NULL).
/// This is the object the whole inference works on: θ selects t ⇔ θ ≤ Part(t).
lat::Partition TuplePartition(const rel::Tuple& tuple);

/// True iff p1 and p2 select exactly the same rows of `relation`
/// ("instance-equivalence" in the paper; the inference goal is identification
/// up to this relation).
bool InstanceEquivalent(const rel::Relation& relation, const JoinPredicate& p1,
                        const JoinPredicate& p2);

/// Same over a TupleStore (code-level evaluation, no decoding).
bool InstanceEquivalent(const TupleStore& store, const JoinPredicate& p1,
                        const JoinPredicate& p2);

}  // namespace jim::core

#endif  // JIM_CORE_JOIN_PREDICATE_H_
