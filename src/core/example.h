#ifndef JIM_CORE_EXAMPLE_H_
#define JIM_CORE_EXAMPLE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace jim::core {

/// A membership-query answer: the user wants the tuple in the join result
/// (positive) or not (negative). [Angluin 1988]-style labels.
enum class Label { kPositive, kNegative };

inline std::string_view LabelToString(Label label) {
  return label == Label::kPositive ? "+" : "-";
}

inline Label Negate(Label label) {
  return label == Label::kPositive ? Label::kNegative : Label::kPositive;
}

/// One labeled example: a tuple of the instance plus its user label.
struct LabeledExample {
  size_t tuple_index = 0;
  Label label = Label::kPositive;
};

using LabeledExamples = std::vector<LabeledExample>;

}  // namespace jim::core

#endif  // JIM_CORE_EXAMPLE_H_
