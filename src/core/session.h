#ifndef JIM_CORE_SESSION_H_
#define JIM_CORE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/example.h"
#include "core/join_predicate.h"
#include "core/oracle.h"
#include "core/strategies.h"
#include "relational/relation.h"
#include "util/status.h"

namespace jim::obs {
class SessionTracer;
}  // namespace jim::obs

namespace jim::core {

/// The four interaction types of the demonstration (paper Figure 3).
enum class InteractionMode {
  /// (1) The user labels tuples in any order, nothing is grayed out; wasted
  /// labels on uninformative tuples count as interactions.
  kLabelAll = 1,
  /// (2) Free order, but uninformative tuples are grayed out interactively;
  /// the simulated user picks a random non-grayed tuple.
  kGrayOut = 2,
  /// (3) The system proposes the top-k informative tuples; the user labels
  /// one of them (the simulated user picks uniformly among the k).
  kTopK = 3,
  /// (4) The core interactive scenario: the system proposes the single most
  /// informative tuple according to the strategy.
  kMostInformative = 4,
};

std::string_view InteractionModeToString(InteractionMode mode);

/// Strictly parses a user-supplied interaction-mode number ("1".."4");
/// rejects non-numbers, trailing garbage, and out-of-range values. Shared by
/// the example CLIs so their --mode flags validate identically.
util::StatusOr<InteractionMode> ParseInteractionMode(std::string_view text);

/// One question/answer exchange in a session trace.
struct SessionStep {
  size_t class_id = 0;
  size_t tuple_index = 0;
  Label label = Label::kPositive;
  /// Classes/tuples that left the informative pool because of this label
  /// (the labeled one included); 0 for wasted labels.
  size_t pruned_classes = 0;
  size_t pruned_tuples = 0;
  /// Strategy + propagation time for this step.
  int64_t micros = 0;
};

/// Outcome of a full simulated inference session.
struct SessionResult {
  std::vector<SessionStep> steps;
  /// Number of labels the user supplied (== steps.size()).
  size_t interactions = 0;
  /// Labels that taught the system nothing (mode 1 can waste effort).
  size_t wasted_interactions = 0;
  /// The predicate JIM returns (θ_P at termination).
  std::optional<JoinPredicate> result;
  /// Whether `result` selects exactly the same tuples as the goal — the
  /// paper's success criterion (identification up to instance-equivalence).
  bool identified_goal = false;
  double total_seconds = 0;
  /// Engine statistics at termination.
  InferenceEngine::Stats final_stats;
};

/// Options for RunSession.
struct SessionOptions {
  InteractionMode mode = InteractionMode::kMostInformative;
  /// k for mode 3.
  size_t top_k = 5;
  /// Seed for the simulated user's own choices (modes 1-3).
  uint64_t user_seed = 7;
  /// Safety valve: abort (JIM_CHECK) if a session exceeds this many steps —
  /// a session can never legitimately need more labels than tuple classes.
  size_t max_steps = 1 << 20;
  /// Optional structured tracer (obs/trace.h): one typed event per step.
  /// Purely observational — a session runs identically with or without it
  /// (the parity suites pin this). Not owned; null means "don't trace".
  obs::SessionTracer* tracer = nullptr;
};

/// Runs a complete inference session: the oracle answers, the strategy (and
/// mode) decides what gets asked. Terminates when the engine identifies the
/// goal up to instance-equivalence. `goal` is used only to check
/// `identified_goal` (the oracle may embed noise or a different predicate).
/// The instance comes in through the TupleStore seam; tuples are decoded
/// only when shown to the oracle.
SessionResult RunSession(std::shared_ptr<const TupleStore> store,
                         const JoinPredicate& goal, Strategy& strategy,
                         Oracle& oracle, const SessionOptions& options = {});

/// Convenience: wraps `relation` into a RelationTupleStore first.
SessionResult RunSession(std::shared_ptr<const rel::Relation> relation,
                         const JoinPredicate& goal, Strategy& strategy,
                         Oracle& oracle, const SessionOptions& options = {});

/// Same, but drives an engine the caller already built — typically a cheap
/// clone of a prototype (engine copies share the class table and the K_c
/// cache copy-on-write), which skips the O(N·n²) class construction per
/// session. This is the unit of work exec::BatchSessionRunner fans out. The
/// engine must be fresh (no labels yet) for the session trace to mean what
/// the benches assume.
SessionResult RunSessionOnEngine(InferenceEngine& engine,
                                 const JoinPredicate& goal, Strategy& strategy,
                                 Oracle& oracle,
                                 const SessionOptions& options = {});

/// Convenience: exact oracle for `goal`, default options with mode 4.
SessionResult RunSession(std::shared_ptr<const TupleStore> store,
                         const JoinPredicate& goal, Strategy& strategy);
SessionResult RunSession(std::shared_ptr<const rel::Relation> relation,
                         const JoinPredicate& goal, Strategy& strategy);

/// Serializes a session trace to compact JSON (for external analysis of
/// bench runs): interactions, per-step asked tuple/label/pruning/latency,
/// the inferred predicate, and the identification verdict.
std::string SessionResultToJson(const SessionResult& result);

}  // namespace jim::core

#endif  // JIM_CORE_SESSION_H_
