#ifndef JIM_CORE_JIM_H_
#define JIM_CORE_JIM_H_

/// Umbrella header for the JIM public API.
///
/// Typical use (see examples/quickstart.cpp):
///
///   auto relation = std::make_shared<rel::Relation>(...);   // the instance
///   // Encode once, build classes on integer codes (a factorized
///   // query::UniversalTable store plugs in the same way).
///   core::InferenceEngine engine(core::MakeRelationStore(relation));
///   auto strategy = core::MakeStrategy("lookahead-entropy").value();
///   while (!engine.IsDone()) {
///     size_t cls = strategy->PickClass(engine);
///     size_t tuple = engine.tuple_class(cls).tuple_indices[0];
///     core::Label answer = AskTheUser(relation->row(tuple));
///     JIM_CHECK_OK(engine.SubmitClassLabel(cls, answer));
///   }
///   core::JoinPredicate inferred = engine.Result();

#include "core/engine.h"         // IWYU pragma: export
#include "core/example.h"        // IWYU pragma: export
#include "core/inference_state.h"// IWYU pragma: export
#include "core/join_predicate.h" // IWYU pragma: export
#include "core/oracle.h"         // IWYU pragma: export
#include "core/selection_inference.h"  // IWYU pragma: export
#include "core/session.h"        // IWYU pragma: export
#include "core/speculation.h"    // IWYU pragma: export
#include "core/strategies.h"     // IWYU pragma: export
#include "core/tuple_store.h"    // IWYU pragma: export

#endif  // JIM_CORE_JIM_H_
