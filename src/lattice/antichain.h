#ifndef JIM_LATTICE_ANTICHAIN_H_
#define JIM_LATTICE_ANTICHAIN_H_

#include <string>
#include <vector>

#include "lattice/partition.h"

namespace jim::lat {

/// A set of pairwise-incomparable partitions, maintained as the *maximal*
/// elements of everything inserted (under the refinement order ≤).
///
/// The inference engine uses one antichain to represent the negative
/// examples: a candidate predicate θ is ruled out iff θ ≤ M for some member
/// M. Only maximal forbidden partitions matter, so dominated insertions are
/// absorbed.
///
/// Members are kept ordered by lattice rank, descending (coarsest first).
/// Since q ≤ m forces Rank(q) ≤ Rank(m), a DominatedBy scan can stop at the
/// first member whose rank drops below the query's — a precomputed-rank
/// early exit that prunes most of the scan on typical (rank-diverse) chains.
class Antichain {
 public:
  Antichain() = default;

  /// Inserts `p`, keeping only maximal elements. Returns true if the
  /// antichain changed (p was not already dominated by a member).
  bool Insert(const Partition& p);

  /// True iff q ≤ m for some member m (q is "covered"/forbidden).
  bool DominatedBy(const Partition& q) const;

  /// Allocation-free overload: refinement checks run out of `scratch`
  /// (Partition::RefinesWith), with the same rank early exit. The hot path
  /// of the engine's incremental classification.
  bool DominatedBy(const Partition& q, PartitionScratch& scratch) const;

  /// True iff q is a member.
  bool Contains(const Partition& q) const;

  /// Drops members that are not ≤ `bound`, replacing each with its meet with
  /// `bound` when that meet is still maximal. Called when θ_P shrinks: only
  /// the part of a forbidden zone below the new θ_P remains relevant.
  ///
  /// Members already ≤ `bound` are their own meet and — being maximal in the
  /// old antichain — stay maximal among all the meets, so they are re-added
  /// directly without the Insert dominance scan (and without computing a
  /// meet at all).
  void RestrictTo(const Partition& bound);

  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// Members ordered by rank, descending (ties in insertion order).
  const std::vector<Partition>& members() const { return members_; }

  /// Pair cover: sets cover[i*n + j] = 1 (i < j) for every attribute pair
  /// that is co-block in at least one member, 0 everywhere else (the vector
  /// is resized/cleared to n*n). Since q ≤ m requires every co-block pair of
  /// q to be co-block in m, a partition owning a co-block pair *outside* the
  /// cover cannot be dominated by any member — the O(1) exemption test the
  /// engine's watch-based propagation runs instead of a full DominatedBy
  /// scan. O(size · n²).
  void FillPairCover(size_t n, std::vector<uint8_t>& cover) const;

  /// Rank of the coarsest member (the first, given the descending order);
  /// 0 when empty. Upper-bounds the rank of any dominated partition.
  size_t MaxMemberRank() const {
    return members_.empty() ? 0 : members_.front().Rank();
  }

  /// Invariant audit (see util/check.h): JIM_CHECK-fails unless members are
  /// each canonical, all of one arity, ordered by descending rank, and
  /// pairwise incomparable under refinement (the defining antichain
  /// property). O(size² · n); callable from tests and JIM_AUDIT sites.
  void CheckInvariants() const;

  /// Canonical rendering (members sorted by RGS), usable as a memo key.
  std::string ToString() const;

 private:
  /// Appends `p` at the end of its rank group, preserving the descending
  /// rank order. Precondition: p is incomparable to every member.
  void InsertOrdered(const Partition& p);

  std::vector<Partition> members_;
};

}  // namespace jim::lat

#endif  // JIM_LATTICE_ANTICHAIN_H_
