#ifndef JIM_LATTICE_ENUMERATION_H_
#define JIM_LATTICE_ENUMERATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "lattice/partition.h"
#include "util/status.h"

namespace jim::lat {

/// Bell number B(n): the number of partitions of an n-element set.
/// Exact for n <= 25 (B(25) = 4,638,590,332,229,999,353 fits in uint64).
/// JIM_CHECK-fails beyond that.
uint64_t BellNumber(size_t n);

/// Visits every partition of {0..n-1} in restricted-growth-string order.
/// The visitor returns false to stop early; VisitAllPartitions returns false
/// iff it was stopped. Exponential (B(n) partitions) — the engine never calls
/// this on real instances; it exists for the optimal strategy, the exact
/// consistent-predicate counter, and property tests.
bool VisitAllPartitions(size_t n,
                        const std::function<bool(const Partition&)>& visitor);

/// Materializes all partitions of {0..n-1}. Requires small n (checked:
/// n <= 12, B(12) = 4,213,597).
std::vector<Partition> AllPartitions(size_t n);

/// Visits every refinement q ≤ p (i.e. every sub-predicate of p). The number
/// of refinements is ∏ B(|block|) over p's blocks — usually far smaller than
/// B(n). Visitor returns false to stop early; returns false iff stopped.
bool VisitRefinements(const Partition& p,
                      const std::function<bool(const Partition&)>& visitor);

/// Number of refinements of p: ∏ B(|block|).
uint64_t CountRefinements(const Partition& p);

/// All refinements of p, materialized (requires the count to be <= `limit`;
/// JIM_CHECK-fails otherwise).
std::vector<Partition> AllRefinements(const Partition& p,
                                      uint64_t limit = 1 << 20);

/// The lower covers of p: partitions obtained by splitting exactly one block
/// of p into two non-empty parts (immediate predecessors in the refinement
/// order). Exponential in the largest block size.
std::vector<Partition> LowerCovers(const Partition& p);

/// The upper covers of p: partitions obtained by merging exactly two blocks
/// (immediate successors). Quadratic in the number of blocks.
std::vector<Partition> UpperCovers(const Partition& p);

}  // namespace jim::lat

#endif  // JIM_LATTICE_ENUMERATION_H_
