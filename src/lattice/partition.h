#ifndef JIM_LATTICE_PARTITION_H_
#define JIM_LATTICE_PARTITION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace jim::lat {

/// A partition of {0, 1, ..., n-1}, the canonical form of an equi-join
/// predicate over n attributes (two attributes in the same block must carry
/// equal values).
///
/// Internally stored as a restricted growth string (RGS): `block_of[i]` is
/// the id of element i's block, and ids are assigned in order of first
/// occurrence (block_of[0] == 0, and block_of[i] <= 1 + max of the prefix).
/// The RGS is a canonical form: two partitions are equal iff their RGS
/// vectors are equal, which makes hashing and ordering trivial.
///
/// Partitions of a fixed n form a lattice under refinement:
///   p ≤ q  ("p refines q")  ⇔  every block of p is contained in a block of q.
/// In join-predicate terms, coarser = more equality constraints = selects
/// fewer tuples; the bottom (all singletons) is the empty predicate.
class Partition {
 public:
  /// The partition of the empty set (n = 0).
  Partition() = default;

  /// Finest partition: n singleton blocks (the empty join predicate).
  static Partition Singletons(size_t n);

  /// Coarsest partition: one block (all attributes pairwise equal).
  static Partition Top(size_t n);

  /// From an arbitrary block-id labeling (normalized internally).
  static Partition FromLabels(const std::vector<int>& labels);

  /// Finest partition in which each given (i, j) pair is co-block; the
  /// transitive closure is taken automatically. Pairs must be within range.
  static util::StatusOr<Partition> FromPairs(
      size_t n, const std::vector<std::pair<size_t, size_t>>& pairs);

  /// From explicit blocks. Every element of {0..n-1} must appear exactly
  /// once across `blocks` (empty blocks are rejected).
  static util::StatusOr<Partition> FromBlocks(
      size_t n, const std::vector<std::vector<size_t>>& blocks);

  size_t num_elements() const { return block_of_.size(); }
  size_t num_blocks() const { return num_blocks_; }

  /// Block id of element `i` (ids are 0..num_blocks()-1, in order of first
  /// occurrence).
  int block_of(size_t i) const { return block_of_[i]; }

  /// Number of merges relative to the singleton partition:
  /// rank = n - num_blocks. 0 for the bottom, n-1 for the top. This is the
  /// lattice-theoretic rank function used by the local strategies.
  size_t Rank() const { return block_of_.size() - num_blocks_; }

  bool SameBlock(size_t i, size_t j) const {
    return block_of_[i] == block_of_[j];
  }

  /// True iff this partition refines `other` (this ≤ other): every block of
  /// *this is contained in a block of `other`. Requires equal n.
  bool Refines(const Partition& other) const;

  /// Proper refinement: Refines(other) && *this != other.
  bool StrictlyRefines(const Partition& other) const;

  /// Meet: the coarsest common refinement (intersection of the equivalence
  /// relations). This is the workhorse of the inference engine
  /// (K_t = θ_P ∧ Part(t)). Requires equal n.
  Partition Meet(const Partition& other) const;

  /// Join: the finest common coarsening (transitive closure of the union of
  /// the equivalence relations). Requires equal n.
  Partition Join(const Partition& other) const;

  /// Blocks in canonical order (by smallest member); members ascending.
  std::vector<std::vector<size_t>> Blocks() const;

  /// All co-block pairs (i, j) with i < j — the explicit equality
  /// constraints of the corresponding join predicate.
  std::vector<std::pair<size_t, size_t>> Pairs() const;

  /// A minimal set of pairs generating this partition (spanning-tree pairs
  /// per block): what a human would write in a WHERE clause.
  std::vector<std::pair<size_t, size_t>> GeneratorPairs() const;

  /// True iff all blocks are singletons (the empty predicate).
  bool IsSingletons() const { return num_blocks_ == block_of_.size(); }

  /// e.g. "{0,3|1|2,4}". Stable canonical rendering.
  std::string ToString() const;

  /// The raw restricted growth string.
  const std::vector<int>& labels() const { return block_of_; }

  size_t Hash() const;

  friend bool operator==(const Partition& a, const Partition& b) {
    return a.block_of_ == b.block_of_;
  }
  friend bool operator!=(const Partition& a, const Partition& b) {
    return !(a == b);
  }
  /// Lexicographic order on the RGS — an arbitrary but stable total order
  /// (used for deterministic tie-breaking; unrelated to refinement).
  friend bool operator<(const Partition& a, const Partition& b) {
    return a.block_of_ < b.block_of_;
  }

 private:
  explicit Partition(std::vector<int> canonical_labels);

  static std::vector<int> Canonicalize(const std::vector<int>& labels);

  std::vector<int> block_of_;
  size_t num_blocks_ = 0;
};

/// Hash functor for unordered containers keyed by Partition.
struct PartitionHash {
  size_t operator()(const Partition& p) const { return p.Hash(); }
};

}  // namespace jim::lat

#endif  // JIM_LATTICE_PARTITION_H_
