#ifndef JIM_LATTICE_PARTITION_H_
#define JIM_LATTICE_PARTITION_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace jim::lat {

class Partition;

/// Reusable buffers for the allocation-free partition kernels (MeetInto,
/// RefinesWith, Antichain::DominatedBy). One scratch can be shared by any
/// number of sequential kernel calls; each call logically clears it in O(1)
/// via epoch stamping (a slot is valid only if its stamp equals the current
/// epoch), so the buffers are never memset on the hot path.
///
/// Not thread-safe; use one scratch per thread.
class PartitionScratch {
 public:
  /// Starts a fresh logical table with at least `size` slots. Growth is
  /// amortized: once warmed up to the largest size in play, calls allocate
  /// nothing.
  void BeginTable(size_t size) {
    if (stamp_.size() < size) {
      stamp_.resize(size, 0);
      value_.resize(size, 0);
    }
    if (++epoch_ == 0) {  // stamp wrap-around: invalidate everything once
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }

  bool Has(size_t slot) const { return stamp_[slot] == epoch_; }
  int Get(size_t slot) const { return value_[slot]; }
  void Set(size_t slot, int value) {
    stamp_[slot] = epoch_;
    value_[slot] = value;
  }

 private:
  std::vector<uint32_t> stamp_;
  std::vector<int> value_;
  uint32_t epoch_ = 0;
};

/// A partition of {0, 1, ..., n-1}, the canonical form of an equi-join
/// predicate over n attributes (two attributes in the same block must carry
/// equal values).
///
/// Internally stored as a restricted growth string (RGS): `block_of[i]` is
/// the id of element i's block, and ids are assigned in order of first
/// occurrence (block_of[0] == 0, and block_of[i] <= 1 + max of the prefix).
/// The RGS is a canonical form: two partitions are equal iff their RGS
/// vectors are equal, which makes hashing and ordering trivial.
///
/// Partitions of a fixed n form a lattice under refinement:
///   p ≤ q  ("p refines q")  ⇔  every block of p is contained in a block of q.
/// In join-predicate terms, coarser = more equality constraints = selects
/// fewer tuples; the bottom (all singletons) is the empty predicate.
class Partition {
 public:
  /// The partition of the empty set (n = 0).
  Partition() = default;

  /// Finest partition: n singleton blocks (the empty join predicate).
  static Partition Singletons(size_t n);

  /// Coarsest partition: one block (all attributes pairwise equal).
  static Partition Top(size_t n);

  /// From an arbitrary block-id labeling (normalized internally).
  static Partition FromLabels(const std::vector<int>& labels);

  /// Finest partition in which each given (i, j) pair is co-block; the
  /// transitive closure is taken automatically. Pairs must be within range.
  static util::StatusOr<Partition> FromPairs(
      size_t n, const std::vector<std::pair<size_t, size_t>>& pairs);

  /// From explicit blocks. Every element of {0..n-1} must appear exactly
  /// once across `blocks` (empty blocks are rejected).
  static util::StatusOr<Partition> FromBlocks(
      size_t n, const std::vector<std::vector<size_t>>& blocks);

  size_t num_elements() const { return block_of_.size(); }
  size_t num_blocks() const { return num_blocks_; }

  /// Block id of element `i` (ids are 0..num_blocks()-1, in order of first
  /// occurrence).
  int block_of(size_t i) const { return block_of_[i]; }

  /// Number of merges relative to the singleton partition:
  /// rank = n - num_blocks. 0 for the bottom, n-1 for the top. This is the
  /// lattice-theoretic rank function used by the local strategies.
  size_t Rank() const { return block_of_.size() - num_blocks_; }

  bool SameBlock(size_t i, size_t j) const {
    return block_of_[i] == block_of_[j];
  }

  /// True iff this partition refines `other` (this ≤ other): every block of
  /// *this is contained in a block of `other`. Requires equal n.
  bool Refines(const Partition& other) const;

  /// Proper refinement: Refines(other) && *this != other.
  bool StrictlyRefines(const Partition& other) const;

  /// Meet: the coarsest common refinement (intersection of the equivalence
  /// relations). This is the workhorse of the inference engine
  /// (K_t = θ_P ∧ Part(t)). Requires equal n.
  Partition Meet(const Partition& other) const;

  /// Allocation-free meet: writes `*this ∧ other` into `out`, reusing `out`'s
  /// storage and `scratch`'s dense pair table (steady state: zero heap
  /// traffic). `out` may alias `*this` or `other` (each element is read
  /// before it is overwritten), which makes in-place cache updates
  /// (`K_c ← K_c ∧ θ_P`) a single call. Same result as Meet.
  void MeetInto(const Partition& other, Partition& out,
                PartitionScratch& scratch) const;

  /// Allocation-free Refines: same result, but the block-image table lives in
  /// `scratch`. The hot predicate of DominatedBy scans.
  bool RefinesWith(const Partition& other, PartitionScratch& scratch) const;

  /// Non-refinement witness: finds a pair (i, j), i < j, that is co-block in
  /// *this but split in `other` — exactly the certificate that *this does NOT
  /// refine `other`. Returns false (leaving *wi/*wj untouched) when *this ≤
  /// other, i.e. when no witness exists. Allocation-free (the per-block
  /// representative table lives in `scratch`); O(n). This is what the
  /// engine's watch-based propagation re-registers on: as long as the
  /// watched pair stays split in a forbidden zone, the owning class provably
  /// cannot fall into it.
  bool FindNonRefinementWitness(const Partition& other,
                                PartitionScratch& scratch, size_t* wi,
                                size_t* wj) const;

  /// First co-block pair (i, j), i < j, in element order — the cheapest
  /// watchable certificate that this partition carries at least one equality
  /// constraint. Returns false iff all blocks are singletons. O(n),
  /// allocation-free via `scratch`.
  bool FirstCoBlockPair(PartitionScratch& scratch, size_t* wi,
                        size_t* wj) const;

  /// True iff `*this ∧ other == *this` — the forced-positive test
  /// θ_P ∧ Part(t) == θ_P — without materializing the meet. By lattice
  /// identity, a ∧ b == a ⇔ a ≤ b, so this is exactly an allocation-free
  /// refinement check.
  bool MeetEqualsLeft(const Partition& other, PartitionScratch& scratch) const {
    return RefinesWith(other, scratch);
  }

  /// Cheap 64-bit content hash, computed once at construction (FNV-1a over
  /// the canonical RGS, length-seeded). Equal partitions always have equal
  /// fingerprints, so `fingerprint mismatch ⇒ not equal` gives equality and
  /// hashing an O(1) fast path.
  uint64_t Fingerprint() const { return fingerprint_; }

  /// Join: the finest common coarsening (transitive closure of the union of
  /// the equivalence relations). Requires equal n.
  Partition Join(const Partition& other) const;

  /// Blocks in canonical order (by smallest member); members ascending.
  std::vector<std::vector<size_t>> Blocks() const;

  /// All co-block pairs (i, j) with i < j — the explicit equality
  /// constraints of the corresponding join predicate.
  std::vector<std::pair<size_t, size_t>> Pairs() const;

  /// A minimal set of pairs generating this partition (spanning-tree pairs
  /// per block): what a human would write in a WHERE clause.
  std::vector<std::pair<size_t, size_t>> GeneratorPairs() const;

  /// True iff all blocks are singletons (the empty predicate).
  bool IsSingletons() const { return num_blocks_ == block_of_.size(); }

  /// Invariant audit (see util/check.h): JIM_CHECK-fails unless block_of_ is
  /// a well-formed restricted growth string and the cached num_blocks_ /
  /// fingerprint_ match a from-scratch recompute. O(n); callable from tests
  /// and from JIM_AUDIT sites.
  void CheckInvariants() const;

  /// e.g. "{0,3|1|2,4}". Stable canonical rendering.
  std::string ToString() const;

  /// The raw restricted growth string.
  const std::vector<int>& labels() const { return block_of_; }

  size_t Hash() const;

  friend bool operator==(const Partition& a, const Partition& b) {
    return a.fingerprint_ == b.fingerprint_ && a.block_of_ == b.block_of_;
  }
  friend bool operator!=(const Partition& a, const Partition& b) {
    return !(a == b);
  }
  /// Lexicographic order on the RGS — an arbitrary but stable total order
  /// (used for deterministic tie-breaking; unrelated to refinement).
  friend bool operator<(const Partition& a, const Partition& b) {
    return a.block_of_ < b.block_of_;
  }

 private:
  explicit Partition(std::vector<int> canonical_labels);

  static std::vector<int> Canonicalize(const std::vector<int>& labels);

  /// Recomputes num_blocks_ and fingerprint_ from block_of_ (which must
  /// already be a canonical RGS). Shared by the constructor and MeetInto.
  void FinishCanonical();

  std::vector<int> block_of_;
  size_t num_blocks_ = 0;
  uint64_t fingerprint_ = 0xcbf29ce484222325ull;  // fingerprint of empty RGS
};

/// Hash functor for unordered containers keyed by Partition.
struct PartitionHash {
  size_t operator()(const Partition& p) const { return p.Hash(); }
};

}  // namespace jim::lat

#endif  // JIM_LATTICE_PARTITION_H_
