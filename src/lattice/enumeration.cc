#include "lattice/enumeration.h"

#include <algorithm>

#include "util/logging.h"

namespace jim::lat {

namespace {

/// Visits every restricted growth string of length n (each encodes one set
/// partition). Returns false iff the visitor stopped the enumeration.
bool VisitRgs(size_t n, const std::function<bool(const std::vector<int>&)>& visitor) {
  if (n == 0) {
    return visitor({});
  }
  std::vector<int> rgs(n, 0);
  // prefix_max[i] = max(rgs[0..i]); rgs[i] may range over [0, prefix_max[i-1]+1].
  std::vector<int> prefix_max(n, 0);
  while (true) {
    if (!visitor(rgs)) return false;
    // Find the rightmost position that can be incremented
    // (rgs[i] may grow up to prefix_max[i-1] + 1; rgs[0] is fixed at 0).
    bool advanced = false;
    for (size_t i = n; i > 1;) {
      --i;
      if (rgs[i] <= prefix_max[i - 1]) {
        ++rgs[i];
        prefix_max[i] = std::max(prefix_max[i - 1], rgs[i]);
        for (size_t j = i + 1; j < n; ++j) {
          rgs[j] = 0;
          prefix_max[j] = prefix_max[i];
        }
        advanced = true;
        break;
      }
    }
    if (!advanced) return true;  // enumeration exhausted
  }
}

}  // namespace

uint64_t BellNumber(size_t n) {
  JIM_CHECK_LE(n, size_t{25});
  // Bell triangle.
  std::vector<uint64_t> row = {1};
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint64_t> next;
    next.reserve(row.size() + 1);
    next.push_back(row.back());
    for (uint64_t value : row) {
      next.push_back(next.back() + value);
    }
    row = std::move(next);
  }
  return row.front();
}

bool VisitAllPartitions(size_t n,
                        const std::function<bool(const Partition&)>& visitor) {
  return VisitRgs(n, [&visitor](const std::vector<int>& rgs) {
    return visitor(Partition::FromLabels(rgs));
  });
}

std::vector<Partition> AllPartitions(size_t n) {
  JIM_CHECK_LE(n, size_t{12});
  std::vector<Partition> out;
  out.reserve(BellNumber(n));
  VisitAllPartitions(n, [&out](const Partition& p) {
    out.push_back(p);
    return true;
  });
  return out;
}

bool VisitRefinements(const Partition& p,
                      const std::function<bool(const Partition&)>& visitor) {
  const auto blocks = p.Blocks();
  const size_t n = p.num_elements();
  std::vector<int> labels(n, 0);

  // Recursively choose a partition of each block; label offsets keep the
  // blocks of distinct p-blocks distinct in the combined labeling.
  std::function<bool(size_t, int)> recurse = [&](size_t block_index,
                                                 int label_offset) -> bool {
    if (block_index == blocks.size()) {
      return visitor(Partition::FromLabels(labels));
    }
    const std::vector<size_t>& block = blocks[block_index];
    return VisitRgs(block.size(), [&](const std::vector<int>& rgs) {
      int sub_blocks = 0;
      for (size_t k = 0; k < block.size(); ++k) {
        labels[block[k]] = label_offset + rgs[k];
        sub_blocks = std::max(sub_blocks, rgs[k] + 1);
      }
      return recurse(block_index + 1, label_offset + sub_blocks);
    });
  };
  return recurse(0, 0);
}

uint64_t CountRefinements(const Partition& p) {
  uint64_t count = 1;
  for (const auto& block : p.Blocks()) {
    count *= BellNumber(block.size());
  }
  return count;
}

std::vector<Partition> AllRefinements(const Partition& p, uint64_t limit) {
  const uint64_t count = CountRefinements(p);
  JIM_CHECK_LE(count, limit);
  std::vector<Partition> out;
  out.reserve(count);
  VisitRefinements(p, [&out](const Partition& q) {
    out.push_back(q);
    return true;
  });
  return out;
}

std::vector<Partition> LowerCovers(const Partition& p) {
  std::vector<Partition> covers;
  const auto blocks = p.Blocks();
  const size_t n = p.num_elements();
  for (size_t b = 0; b < blocks.size(); ++b) {
    const auto& block = blocks[b];
    const size_t s = block.size();
    if (s < 2) continue;
    // Split `block` into (part containing block[0], the rest); enumerate via
    // bitmask over members 1..s-1 (1 bit = goes to the second part).
    const uint64_t masks = uint64_t{1} << (s - 1);
    for (uint64_t mask = 1; mask < masks; ++mask) {
      std::vector<int> labels(p.labels());
      const int new_label = static_cast<int>(p.num_blocks());
      for (size_t k = 1; k < s; ++k) {
        if ((mask >> (k - 1)) & 1) {
          labels[block[k]] = new_label;
        }
      }
      covers.push_back(Partition::FromLabels(labels));
    }
  }
  (void)n;
  return covers;
}

std::vector<Partition> UpperCovers(const Partition& p) {
  std::vector<Partition> covers;
  const size_t k = p.num_blocks();
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) {
      std::vector<int> labels(p.labels());
      for (int& label : labels) {
        if (label == static_cast<int>(b)) label = static_cast<int>(a);
      }
      covers.push_back(Partition::FromLabels(labels));
    }
  }
  return covers;
}

}  // namespace jim::lat
