#include "lattice/partition.h"

#include <algorithm>
#include <unordered_map>

#include "lattice/union_find.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::lat {

Partition::Partition(std::vector<int> canonical_labels)
    : block_of_(std::move(canonical_labels)) {
  FinishCanonical();
}

void Partition::FinishCanonical() {
  int max_label = -1;
  for (int label : block_of_) max_label = std::max(max_label, label);
  num_blocks_ = static_cast<size_t>(max_label + 1);
  // Length-seeded so different-arity RGS vectors hash from distinct states;
  // n = 0 degenerates to the plain offset basis, matching the default-
  // constructed fingerprint.
  fingerprint_ = util::Fnv1a64(
      block_of_.begin(), block_of_.end(),
      util::kFnv1a64OffsetBasis ^ (block_of_.size() * util::kFnv1a64Prime));
}

std::vector<int> Partition::Canonicalize(const std::vector<int>& labels) {
  std::vector<int> canonical(labels.size());
  std::unordered_map<int, int> remap;
  remap.reserve(labels.size());
  int next = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    auto [it, inserted] = remap.emplace(labels[i], next);
    if (inserted) ++next;
    canonical[i] = it->second;
  }
  return canonical;
}

Partition Partition::Singletons(size_t n) {
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i);
  return Partition(std::move(labels));
}

Partition Partition::Top(size_t n) {
  return Partition(std::vector<int>(n, 0));
}

Partition Partition::FromLabels(const std::vector<int>& labels) {
  return Partition(Canonicalize(labels));
}

util::StatusOr<Partition> Partition::FromPairs(
    size_t n, const std::vector<std::pair<size_t, size_t>>& pairs) {
  UnionFind uf(n);
  for (const auto& [i, j] : pairs) {
    if (i >= n || j >= n) {
      return util::OutOfRangeError(util::StrFormat(
          "pair (%zu, %zu) out of range for n=%zu", i, j, n));
    }
    uf.Union(i, j);
  }
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(uf.Find(i));
  return Partition(Canonicalize(labels));
}

util::StatusOr<Partition> Partition::FromBlocks(
    size_t n, const std::vector<std::vector<size_t>>& blocks) {
  std::vector<int> labels(n, -1);
  for (size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b].empty()) {
      return util::InvalidArgumentError("empty block in partition");
    }
    for (size_t element : blocks[b]) {
      if (element >= n) {
        return util::OutOfRangeError(
            util::StrFormat("element %zu out of range for n=%zu", element, n));
      }
      if (labels[element] != -1) {
        return util::InvalidArgumentError(
            util::StrFormat("element %zu appears in two blocks", element));
      }
      labels[element] = static_cast<int>(b);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] == -1) {
      return util::InvalidArgumentError(
          util::StrFormat("element %zu missing from blocks", i));
    }
  }
  return Partition(Canonicalize(labels));
}

bool Partition::Refines(const Partition& other) const {
  JIM_CHECK_EQ(num_elements(), other.num_elements());
  // A refinement splits blocks, so it cannot have fewer of them.
  if (num_blocks_ < other.num_blocks_) return false;
  // *this refines other iff elements sharing a block here also share one
  // there, i.e. the map (this-block -> other-block) is well defined.
  std::vector<int> image(num_blocks_, -1);
  for (size_t i = 0; i < block_of_.size(); ++i) {
    int& slot = image[static_cast<size_t>(block_of_[i])];
    if (slot == -1) {
      slot = other.block_of_[i];
    } else if (slot != other.block_of_[i]) {
      return false;
    }
  }
  return true;
}

bool Partition::RefinesWith(const Partition& other,
                            PartitionScratch& scratch) const {
  JIM_CHECK_EQ(num_elements(), other.num_elements());
  if (num_blocks_ < other.num_blocks_) return false;
  scratch.BeginTable(num_blocks_);
  for (size_t i = 0; i < block_of_.size(); ++i) {
    const size_t slot = static_cast<size_t>(block_of_[i]);
    if (!scratch.Has(slot)) {
      scratch.Set(slot, other.block_of_[i]);
    } else if (scratch.Get(slot) != other.block_of_[i]) {
      return false;
    }
  }
  return true;
}

bool Partition::FindNonRefinementWitness(const Partition& other,
                                         PartitionScratch& scratch, size_t* wi,
                                         size_t* wj) const {
  JIM_CHECK_EQ(num_elements(), other.num_elements());
  // Same scan as RefinesWith, but the table keeps each block's first element
  // instead of its image block, so a conflict yields the witness pair
  // directly: the representative and the conflicting element share a block
  // here and sit in different blocks of `other`.
  scratch.BeginTable(num_blocks_);
  for (size_t i = 0; i < block_of_.size(); ++i) {
    const size_t slot = static_cast<size_t>(block_of_[i]);
    if (!scratch.Has(slot)) {
      scratch.Set(slot, static_cast<int>(i));
    } else {
      const size_t rep = static_cast<size_t>(scratch.Get(slot));
      if (other.block_of_[rep] != other.block_of_[i]) {
        *wi = rep;
        *wj = i;
        return true;
      }
    }
  }
  return false;
}

bool Partition::FirstCoBlockPair(PartitionScratch& scratch, size_t* wi,
                                 size_t* wj) const {
  if (IsSingletons()) return false;
  scratch.BeginTable(num_blocks_);
  for (size_t i = 0; i < block_of_.size(); ++i) {
    const size_t slot = static_cast<size_t>(block_of_[i]);
    if (!scratch.Has(slot)) {
      scratch.Set(slot, static_cast<int>(i));
    } else {
      *wi = static_cast<size_t>(scratch.Get(slot));
      *wj = i;
      return true;
    }
  }
  return false;  // unreachable: !IsSingletons() guarantees a repeat
}

bool Partition::StrictlyRefines(const Partition& other) const {
  return *this != other && Refines(other);
}

Partition Partition::Meet(const Partition& other) const {
  JIM_CHECK_EQ(num_elements(), other.num_elements());
  const size_t n = num_elements();
  // Elements are co-block in the meet iff co-block in both inputs: label by
  // the pair (block here, block there), then canonicalize.
  std::vector<int> labels(n);
  std::unordered_map<int64_t, int> remap;
  remap.reserve(n);
  int next = 0;
  for (size_t i = 0; i < n; ++i) {
    const int64_t key = static_cast<int64_t>(block_of_[i]) *
                            static_cast<int64_t>(other.num_blocks_) +
                        other.block_of_[i];
    auto [it, inserted] = remap.emplace(key, next);
    if (inserted) ++next;
    labels[i] = it->second;
  }
  return Partition(std::move(labels));
}

void Partition::MeetInto(const Partition& other, Partition& out,
                         PartitionScratch& scratch) const {
  JIM_CHECK_EQ(num_elements(), other.num_elements());
  const size_t n = num_elements();
  // Same pair-labeling as Meet, but the (block here, block there) → new-label
  // map is a dense epoch-stamped table instead of a hash map. The table has
  // num_blocks² slots at worst — bounded by n², i.e. by the schema width
  // squared, never by the instance size.
  const size_t stride = other.num_blocks_;
  scratch.BeginTable(num_blocks_ * stride);
  // Aliasing note: out.block_of_[i] is written only after both inputs' slot i
  // were read, and the loop runs ascending, so out == *this / out == &other
  // is safe; the bookkeeping fields are rewritten only after the loop.
  std::vector<int>& labels = out.block_of_;
  labels.resize(n);
  int next = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t key =
        static_cast<size_t>(block_of_[i]) * stride +
        static_cast<size_t>(other.block_of_[i]);
    if (!scratch.Has(key)) scratch.Set(key, next++);
    labels[i] = scratch.Get(key);
  }
  out.FinishCanonical();
}

Partition Partition::Join(const Partition& other) const {
  JIM_CHECK_EQ(num_elements(), other.num_elements());
  const size_t n = num_elements();
  UnionFind uf(n);
  // Union consecutive members of each block in both partitions.
  auto merge_blocks = [&uf, n](const Partition& p) {
    std::vector<int> first_of_block(p.num_blocks(), -1);
    for (size_t i = 0; i < n; ++i) {
      int& first = first_of_block[static_cast<size_t>(p.block_of_[i])];
      if (first == -1) {
        first = static_cast<int>(i);
      } else {
        uf.Union(static_cast<size_t>(first), i);
      }
    }
  };
  merge_blocks(*this);
  merge_blocks(other);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(uf.Find(i));
  return Partition(Canonicalize(labels));
}

std::vector<std::vector<size_t>> Partition::Blocks() const {
  std::vector<std::vector<size_t>> blocks(num_blocks_);
  for (size_t i = 0; i < block_of_.size(); ++i) {
    blocks[static_cast<size_t>(block_of_[i])].push_back(i);
  }
  // RGS labeling already orders blocks by first (= smallest) member, and
  // members are pushed in ascending order.
  return blocks;
}

std::vector<std::pair<size_t, size_t>> Partition::Pairs() const {
  std::vector<std::pair<size_t, size_t>> pairs;
  for (const auto& block : Blocks()) {
    for (size_t a = 0; a < block.size(); ++a) {
      for (size_t b = a + 1; b < block.size(); ++b) {
        pairs.emplace_back(block[a], block[b]);
      }
    }
  }
  return pairs;
}

std::vector<std::pair<size_t, size_t>> Partition::GeneratorPairs() const {
  std::vector<std::pair<size_t, size_t>> pairs;
  for (const auto& block : Blocks()) {
    for (size_t a = 1; a < block.size(); ++a) {
      pairs.emplace_back(block[0], block[a]);
    }
  }
  return pairs;
}

std::string Partition::ToString() const {
  std::string out = "{";
  bool first_block = true;
  for (const auto& block : Blocks()) {
    if (!first_block) out += "|";
    first_block = false;
    bool first_element = true;
    for (size_t element : block) {
      if (!first_element) out += ",";
      first_element = false;
      out += std::to_string(element);
    }
  }
  out += "}";
  return out;
}

void Partition::CheckInvariants() const {
  // Restricted growth string: the first element is block 0, and every label
  // is at most one past the running maximum (block ids appear in order of
  // first occurrence, with no gaps).
  int max_seen = -1;
  for (size_t i = 0; i < block_of_.size(); ++i) {
    JIM_CHECK_GE(block_of_[i], 0) << "negative block id at element " << i;
    JIM_CHECK_LE(block_of_[i], max_seen + 1)
        << "non-canonical RGS at element " << i << " of " << ToString();
    max_seen = std::max(max_seen, block_of_[i]);
  }
  JIM_CHECK_EQ(num_blocks_, static_cast<size_t>(max_seen + 1))
      << "cached block count disagrees with the RGS of " << ToString();
  // The construction-time fingerprint must equal a from-scratch recompute —
  // a mismatch means some mutation path skipped FinishCanonical.
  const uint64_t recomputed = util::Fnv1a64(
      block_of_.begin(), block_of_.end(),
      util::kFnv1a64OffsetBasis ^ (block_of_.size() * util::kFnv1a64Prime));
  JIM_CHECK_EQ(fingerprint_, recomputed)
      << "stale fingerprint on " << ToString();
}

size_t Partition::Hash() const {
  // The construction-time fingerprint: hashing is O(1) instead of a rescan.
  return static_cast<size_t>(fingerprint_);
}

}  // namespace jim::lat
