#ifndef JIM_LATTICE_UNION_FIND_H_
#define JIM_LATTICE_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace jim::lat {

/// Disjoint-set forest with union by size and path compression.
///
/// Backs the partition join operation (finest common coarsening) and the
/// transitive-closure step when building predicates from attribute pairs.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1), num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Representative of the set containing `x`.
  size_t Find(size_t x) {
    size_t root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      size_t next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }

  /// Merges the sets of `a` and `b`; returns true if they were distinct.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --num_sets_;
    return true;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  size_t num_elements() const { return parent_.size(); }
  size_t num_sets() const { return num_sets_; }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  size_t num_sets_;
};

}  // namespace jim::lat

#endif  // JIM_LATTICE_UNION_FIND_H_
