#include "lattice/antichain.h"

#include <algorithm>

namespace jim::lat {

bool Antichain::Insert(const Partition& p) {
  for (const Partition& m : members_) {
    if (p.Refines(m)) return false;  // dominated (or already present)
  }
  // Remove members now dominated by p.
  members_.erase(std::remove_if(members_.begin(), members_.end(),
                                [&p](const Partition& m) {
                                  return m.Refines(p);
                                }),
                 members_.end());
  members_.push_back(p);
  return true;
}

bool Antichain::DominatedBy(const Partition& q) const {
  for (const Partition& m : members_) {
    if (q.Refines(m)) return true;
  }
  return false;
}

bool Antichain::Contains(const Partition& q) const {
  for (const Partition& m : members_) {
    if (m == q) return true;
  }
  return false;
}

void Antichain::RestrictTo(const Partition& bound) {
  std::vector<Partition> old = std::move(members_);
  members_.clear();
  for (const Partition& m : old) {
    Insert(m.Meet(bound));
  }
}

std::string Antichain::ToString() const {
  std::vector<Partition> sorted = members_;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "[";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ", ";
    out += sorted[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace jim::lat
