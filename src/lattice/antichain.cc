#include "lattice/antichain.h"

#include <algorithm>

#include "util/check.h"

namespace jim::lat {

void Antichain::InsertOrdered(const Partition& p) {
  const size_t rank = p.Rank();
  auto pos = std::upper_bound(
      members_.begin(), members_.end(), rank,
      [](size_t r, const Partition& m) { return r > m.Rank(); });
  members_.insert(pos, p);
}

bool Antichain::Insert(const Partition& p) {
  const size_t rank = p.Rank();
  for (const Partition& m : members_) {
    // Only members at least as coarse can dominate p; the list is rank-
    // descending, so the first member below p's rank ends the scan.
    if (m.Rank() < rank) break;
    if (p.Refines(m)) return false;  // dominated (or already present)
  }
  // Remove members now dominated by p (necessarily of rank ≤ p's).
  members_.erase(std::remove_if(members_.begin(), members_.end(),
                                [&p, rank](const Partition& m) {
                                  return m.Rank() <= rank && m.Refines(p);
                                }),
                 members_.end());
  InsertOrdered(p);
  return true;
}

bool Antichain::DominatedBy(const Partition& q) const {
  const size_t rank = q.Rank();
  for (const Partition& m : members_) {
    if (m.Rank() < rank) break;  // rank-descending order: no dominator left
    if (q.Refines(m)) return true;
  }
  return false;
}

bool Antichain::DominatedBy(const Partition& q,
                            PartitionScratch& scratch) const {
  const size_t rank = q.Rank();
  for (const Partition& m : members_) {
    if (m.Rank() < rank) break;
    if (q.RefinesWith(m, scratch)) return true;
  }
  return false;
}

bool Antichain::Contains(const Partition& q) const {
  for (const Partition& m : members_) {
    if (m == q) return true;
  }
  return false;
}

void Antichain::RestrictTo(const Partition& bound) {
  std::vector<Partition> old = std::move(members_);
  members_.clear();
  // First pass: members already ≤ bound are their own meet. They were
  // maximal among the old members and remain maximal among all the meets
  // (m ≤ m' ∧ bound ≤ m' would contradict antichain incomparability), so
  // they go back in directly — no meet, no dominance scan. Order-preserving
  // push_back keeps the rank-descending invariant.
  std::vector<const Partition*> to_meet;
  to_meet.reserve(old.size());
  for (const Partition& m : old) {
    if (m.Refines(bound)) {
      members_.push_back(m);
    } else {
      to_meet.push_back(&m);
    }
  }
  // Second pass: genuinely clipped members get the full treatment — their
  // meets can be dominated by kept members or by each other.
  for (const Partition* m : to_meet) {
    Insert(m->Meet(bound));
  }
}

void Antichain::FillPairCover(size_t n, std::vector<uint8_t>& cover) const {
  cover.assign(n * n, 0);
  for (const Partition& m : members_) {
    JIM_CHECK_EQ(m.num_elements(), n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (m.SameBlock(i, j)) cover[i * n + j] = 1;
      }
    }
  }
}

void Antichain::CheckInvariants() const {
  for (size_t i = 0; i < members_.size(); ++i) {
    members_[i].CheckInvariants();
    if (i > 0) {
      JIM_CHECK_EQ(members_[i].num_elements(), members_[0].num_elements())
          << "mixed-arity antichain member " << i;
      // The rank early exits in Insert/DominatedBy assume this order.
      JIM_CHECK_GE(members_[i - 1].Rank(), members_[i].Rank())
          << "rank order violated between members " << i - 1 << " and " << i;
    }
    for (size_t j = 0; j < i; ++j) {
      JIM_CHECK(!members_[i].Refines(members_[j]) &&
                !members_[j].Refines(members_[i]))
          << "comparable members " << members_[j].ToString() << " and "
          << members_[i].ToString();
    }
  }
}

std::string Antichain::ToString() const {
  std::vector<Partition> sorted = members_;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "[";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ", ";
    out += sorted[i].ToString();
  }
  out += "]";
  return out;
}

}  // namespace jim::lat
