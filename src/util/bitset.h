#ifndef JIM_UTIL_BITSET_H_
#define JIM_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"

namespace jim::util {

/// Fixed-size-at-construction bitset with set-algebra operations.
///
/// Used by the inference engine to represent sets of tuple classes (selected
/// sets, pruned sets) where std::vector<bool> is too slow for the heavy
/// subset/intersection traffic of lookahead strategies.
class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}
  explicit DynamicBitset(size_t size, bool initial = false)
      : size_(size),
        words_((size + kBitsPerWord - 1) / kBitsPerWord,
               initial ? ~uint64_t{0} : 0) {
    ClearPadding();
  }

  size_t size() const { return size_; }

  bool Test(size_t pos) const {
    JIM_DCHECK(pos < size_);
    return (words_[pos / kBitsPerWord] >> (pos % kBitsPerWord)) & 1u;
  }

  void Set(size_t pos, bool value = true) {
    JIM_DCHECK(pos < size_);
    const uint64_t mask = uint64_t{1} << (pos % kBitsPerWord);
    if (value) {
      words_[pos / kBitsPerWord] |= mask;
    } else {
      words_[pos / kBitsPerWord] &= ~mask;
    }
  }

  void Reset(size_t pos) { Set(pos, false); }

  void SetAll() {
    for (auto& w : words_) w = ~uint64_t{0};
    ClearPadding();
  }
  void ResetAll() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t w : words_) total += static_cast<size_t>(__builtin_popcountll(w));
    return total;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool None() const { return !Any(); }

  /// Index of the first set bit, or size() if none.
  size_t FindFirst() const { return FindNext(0); }

  /// Index of the first set bit at position >= from, or size() if none.
  size_t FindNext(size_t from) const {
    if (from >= size_) return size_;
    size_t word_index = from / kBitsPerWord;
    uint64_t word = words_[word_index] & (~uint64_t{0} << (from % kBitsPerWord));
    while (true) {
      if (word != 0) {
        return word_index * kBitsPerWord +
               static_cast<size_t>(__builtin_ctzll(word));
      }
      if (++word_index >= words_.size()) return size_;
      word = words_[word_index];
    }
  }

  DynamicBitset& operator&=(const DynamicBitset& other) {
    JIM_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }
  DynamicBitset& operator|=(const DynamicBitset& other) {
    JIM_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }
  DynamicBitset& operator^=(const DynamicBitset& other) {
    JIM_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
    return *this;
  }

  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator^(DynamicBitset a, const DynamicBitset& b) {
    a ^= b;
    return a;
  }

  /// True iff every set bit of *this is also set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const {
    JIM_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    }
    return true;
  }

  bool Intersects(const DynamicBitset& other) const {
    JIM_DCHECK(size_ == other.size_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// All set positions, ascending.
  std::vector<size_t> ToVector() const {
    std::vector<size_t> out;
    out.reserve(Count());
    for (size_t i = FindFirst(); i < size_; i = FindNext(i + 1)) {
      out.push_back(i);
    }
    return out;
  }

  /// "0101..." with position 0 leftmost.
  std::string ToString() const {
    std::string text(size_, '0');
    for (size_t i = 0; i < size_; ++i) {
      if (Test(i)) text[i] = '1';
    }
    return text;
  }

  /// Hash over the word representation.
  size_t Hash() const;

 private:
  static constexpr size_t kBitsPerWord = 64;

  // Bits past `size_` in the last word must stay zero so Count/== are exact.
  void ClearPadding() {
    const size_t used = size_ % kBitsPerWord;
    if (used != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << used) - 1;
    }
  }

  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace jim::util

#endif  // JIM_UTIL_BITSET_H_
