#ifndef JIM_UTIL_CHECK_H_
#define JIM_UTIL_CHECK_H_

/// Runtime invariant checking, split out of util/logging.h so the assertion
/// vocabulary has one home:
///
///   JIM_CHECK(cond) << "context";   always on, release included — invariant
///                                   violations in the inference engine are
///                                   programming errors and must not silently
///                                   corrupt results.
///   JIM_DCHECK(cond) << "context";  debug builds only; compiled out under
///                                   NDEBUG (the streamed expression is still
///                                   type-checked but never evaluated), so hot
///                                   paths can assert freely.
///   JIM_CHECK_EQ/NE/LT/LE/GT/GE and the JIM_DCHECK_* twins stream both
///   operands into the failure message.
///
/// On top of the assertions sits the *invariant auditor*: load-bearing
/// structures (lat::Partition, lat::Antichain, core::InferenceEngine,
/// rel::Dictionary, the TupleStore backends) expose a `CheckInvariants()`
/// method that re-derives their internal contracts from scratch and
/// JIM_CHECK-fails on any disagreement. Tests call these directly; production
/// code wires them in via
///
///   JIM_AUDIT(CheckInvariants());
///
/// which runs the audit only when auditing is enabled — by compiling with
/// -DJIM_AUDIT_INVARIANTS (the ci.sh audit stage), by setting the
/// JIM_AUDIT_INVARIANTS=1 environment variable, or programmatically via
/// util::SetAuditInvariants(true) (what the parity suites do). Disabled, the
/// macro costs one predictable branch on a cached flag.

#include "util/logging.h"

namespace jim::util {

/// True when JIM_AUDIT blocks should run. Resolution order: an explicit
/// SetAuditInvariants call wins; otherwise the JIM_AUDIT_INVARIANTS compile
/// definition enables audits unconditionally; otherwise the
/// JIM_AUDIT_INVARIANTS environment variable ("" and "0" count as off). The
/// result is cached after the first query.
bool AuditInvariantsEnabled();

/// Overrides the audit flag for this process (tests and parity suites).
void SetAuditInvariants(bool enabled);

}  // namespace jim::util

/// Runs `expr` (typically `CheckInvariants()`) only when invariant auditing
/// is enabled; see AuditInvariantsEnabled for the switches.
#define JIM_AUDIT(expr)                               \
  do {                                                \
    if (::jim::util::AuditInvariantsEnabled()) {      \
      expr;                                           \
    }                                                 \
  } while (false)

/// Aborts with a message when `condition` is false. Always on (release too).
/// Additional context can be streamed: JIM_CHECK(n > 0) << "instance empty";
#define JIM_CHECK(condition)                                            \
  (condition) ? (void)0                                                 \
              : ::jim::util::internal_logging::LogMessageVoidify() &    \
                    ::jim::util::internal_logging::LogMessage(          \
                        ::jim::util::LogLevel::kFatal, __FILE__,        \
                        __LINE__)                                       \
                        .stream()                                       \
                    << "Check failed: " #condition " "

#define JIM_CHECK_OK(expr)                                             \
  do {                                                                 \
    const auto& _s = (expr);                                           \
    JIM_CHECK(_s.ok()) << _s.ToString();                               \
  } while (false)

#define JIM_CHECK_EQ(a, b) JIM_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define JIM_CHECK_NE(a, b) JIM_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define JIM_CHECK_LT(a, b) JIM_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define JIM_CHECK_LE(a, b) JIM_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define JIM_CHECK_GT(a, b) JIM_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define JIM_CHECK_GE(a, b) JIM_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

/// Debug-only checks: compiled out under NDEBUG (operands are type-checked
/// but never evaluated), so they are free on release hot paths.
#ifdef NDEBUG
#define JIM_DCHECK(condition) \
  while (false) JIM_CHECK(condition)
#else
#define JIM_DCHECK(condition) JIM_CHECK(condition)
#endif

#define JIM_DCHECK_EQ(a, b) JIM_DCHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define JIM_DCHECK_NE(a, b) JIM_DCHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define JIM_DCHECK_LT(a, b) JIM_DCHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define JIM_DCHECK_LE(a, b) JIM_DCHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define JIM_DCHECK_GT(a, b) JIM_DCHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define JIM_DCHECK_GE(a, b) JIM_DCHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // JIM_UTIL_CHECK_H_
