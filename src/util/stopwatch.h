#ifndef JIM_UTIL_STOPWATCH_H_
#define JIM_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace jim::util {

/// Monotonic wall-clock stopwatch used by session tracing and benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace jim::util

#endif  // JIM_UTIL_STOPWATCH_H_
