#ifndef JIM_UTIL_STRING_UTIL_H_
#define JIM_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace jim::util {

/// Splits `input` on `delim`. Empty fields are preserved:
/// Split("a,,b", ',') == {"a", "", "b"}; Split("", ',') == {""}.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// ASCII case conversions.
std::string ToLower(std::string_view input);
std::string ToUpper(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict integer / double parsing: the whole string must be consumed.
StatusOr<int64_t> ParseInt64(std::string_view text);
StatusOr<double> ParseDouble(std::string_view text);

/// Formats a double compactly (up to 6 significant digits, no trailing
/// zeros), matching how values print in examples and bench tables.
std::string FormatDouble(double value);

/// Renders `n` with thousands separators: 1234567 -> "1,234,567".
std::string WithThousandsSeparators(int64_t n);

}  // namespace jim::util

#endif  // JIM_UTIL_STRING_UTIL_H_
