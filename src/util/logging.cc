#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace jim::util {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip the directory part for terser log lines.
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace jim::util
