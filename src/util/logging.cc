#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace jim::util {

namespace {

/// -1 = not yet resolved; otherwise the LogLevel value. The JIM_LOG_LEVEL
/// environment variable is consulted once, on the first threshold read, so
/// processes can raise/lower verbosity without a code change. SetLogLevel
/// writes the value directly and thereby overrides the env var.
std::atomic<int> g_log_level{-1};

LogLevel ResolveDefaultLevel() {
  const char* env = std::getenv("JIM_LOG_LEVEL");
  if (env != nullptr && *env != '\0') {
    if (const auto parsed = ParseLogLevel(env)) return *parsed;
    std::fprintf(stderr,
                 "[W logging.cc] unrecognized JIM_LOG_LEVEL '%s'; using info\n",
                 env);
  }
  return LogLevel::kInfo;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  int state = g_log_level.load();
  if (state < 0) {
    // Benign race: concurrent first reads resolve the same env var to the
    // same value, so the duplicated store is idempotent.
    state = static_cast<int>(ResolveDefaultLevel());
    g_log_level.store(state);
  }
  return static_cast<LogLevel>(state);
}

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  std::string lowered;
  lowered.reserve(text.size());
  for (const char c : StripWhitespace(text)) {
    lowered.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lowered == "debug" || lowered == "d" || lowered == "0") {
    return LogLevel::kDebug;
  }
  if (lowered == "info" || lowered == "i" || lowered == "1") {
    return LogLevel::kInfo;
  }
  if (lowered == "warning" || lowered == "warn" || lowered == "w" ||
      lowered == "2") {
    return LogLevel::kWarning;
  }
  if (lowered == "error" || lowered == "e" || lowered == "3") {
    return LogLevel::kError;
  }
  if (lowered == "fatal" || lowered == "f" || lowered == "4") {
    return LogLevel::kFatal;
  }
  return std::nullopt;
}

namespace internal_logging {

int64_t MonotonicLogMicros() {
  // The epoch is the first call, i.e. effectively process start for any
  // process that logs; absolute values only matter relative to each other.
  static const Stopwatch* clock = new Stopwatch();  // never freed
  return clock->ElapsedMicros();
}

int LogThreadId() {
  static std::atomic<int> next_id{0};
  thread_local const int id = next_id.fetch_add(1);
  return id;
}

std::string FormatLogPrefix(LogLevel level, const char* file, int line) {
  // Strip the directory part for terser log lines.
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  const int64_t micros = MonotonicLogMicros();
  return StrFormat("[%s +%lld.%03lldms T%d %s:%d] ", LevelTag(level),
                   static_cast<long long>(micros / 1000),
                   static_cast<long long>(micros % 1000), LogThreadId(),
                   basename, line);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << FormatLogPrefix(level, file, line);
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace jim::util
