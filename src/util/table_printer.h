#ifndef JIM_UTIL_TABLE_PRINTER_H_
#define JIM_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace jim::util {

/// Column alignment for TablePrinter.
enum class Align { kLeft, kRight };

/// Formats rows of strings as an aligned ASCII table — used by every bench
/// binary and the console UI so the output matches the tables in
/// EXPERIMENTS.md.
///
///   TablePrinter t({"strategy", "interactions"});
///   t.AddRow({"lookahead", "7"});
///   std::cout << t.ToString();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Per-column alignment; default is left for all.
  void SetAlignments(std::vector<Align> alignments);

  void AddRow(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next added row.
  void AddSeparator();

  size_t num_rows() const { return rows_.size(); }

  std::string ToString() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Renders a horizontal ASCII bar chart (Figure-4 style): one labeled bar
/// per entry, scaled to `max_width` characters, value printed at the end.
std::string BarChart(const std::vector<std::pair<std::string, double>>& bars,
                     size_t max_width = 50);

}  // namespace jim::util

#endif  // JIM_UTIL_TABLE_PRINTER_H_
