#ifndef JIM_UTIL_CSV_H_
#define JIM_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace jim::util {

/// RFC-4180-style CSV support: fields containing the delimiter, quotes, or
/// newlines are double-quoted; embedded quotes are doubled ("").

/// Parses one CSV record (no trailing newline) into fields.
StatusOr<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                                char delim = ',');

/// Parses a whole document. Handles quoted fields spanning multiple lines.
/// Skips a UTF-8 BOM and ignores a final empty line.
StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view content, char delim = ',');

/// Serializes one record, quoting fields only when needed.
std::string FormatCsvLine(const std::vector<std::string>& fields,
                          char delim = ',');

/// Reads an entire file into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace jim::util

#endif  // JIM_UTIL_CSV_H_
