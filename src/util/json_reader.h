#ifndef JIM_UTIL_JSON_READER_H_
#define JIM_UTIL_JSON_READER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace jim::util {

/// A parsed JSON document. The serving protocol (src/serve/) is
/// newline-delimited JSON, so the repo needs a reader to pair with
/// util::JsonWriter; this one is deliberately small: recursive descent,
/// typed kInvalidArgument errors naming the offset, objects backed by a
/// std::map so iteration (and re-serialization) is deterministic.
///
/// Numbers keep both views: an integral token that fits int64 reports
/// is_int() and AsInt64(); every number reports AsDouble().
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t n);
  static JsonValue Double(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_int() const { return kind_ == Kind::kNumber && int_valid_; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling one against the wrong kind aborts (programming
  /// error, same contract as StatusOr::value).
  bool AsBool() const;
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  std::vector<JsonValue>& MutableArray();
  std::map<std::string, JsonValue>& MutableObject();

  /// Object member lookup: nullptr when absent or when this is not an
  /// object. The pointer is into this value — do not outlive it.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience lookups with defaults, for flat request/response objects.
  /// A present-but-wrong-kind member returns the fallback too; protocol
  /// code that must distinguish uses Find().
  std::string GetString(std::string_view key, std::string_view fallback) const;
  int64_t GetInt(std::string_view key, int64_t fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;

 private:
  Kind kind_;
  bool bool_ = false;
  bool int_valid_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document; the whole input (modulo surrounding
/// whitespace) must be consumed. Errors are kInvalidArgument naming the
/// byte offset. Nesting deeper than 64 levels is rejected.
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace jim::util

#endif  // JIM_UTIL_JSON_READER_H_
