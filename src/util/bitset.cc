#include "util/bitset.h"

#include "util/hash.h"

namespace jim::util {

size_t DynamicBitset::Hash() const {
  size_t seed = size_;
  for (uint64_t w : words_) {
    HashCombine(seed, w);
  }
  return seed;
}

}  // namespace jim::util
