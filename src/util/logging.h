#ifndef JIM_UTIL_LOGGING_H_
#define JIM_UTIL_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace jim::util {

/// Severity levels for the process-wide logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum severity that is emitted to stderr. The default is
/// kInfo, overridable at startup through the JIM_LOG_LEVEL environment
/// variable (resolved lazily on the first threshold read; an explicit
/// SetLogLevel always wins).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a log-level spelling: full names ("debug", "info", "warning",
/// "error", "fatal"), single letters ("d".."f"), or digits "0".."4" —
/// case-insensitive, surrounding whitespace ignored. nullopt otherwise.
/// This is the JIM_LOG_LEVEL grammar.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

namespace internal_logging {

/// The "[I +12.345ms T0 file.cc:42] " prefix every emitted line carries:
/// severity tag, monotonic milliseconds since the process logging clock
/// started, a small dense thread id (first-log order), and the call site.
/// Exposed so tests can pin the format without scraping stderr.
std::string FormatLogPrefix(LogLevel level, const char* file, int line);

/// Microseconds since the process logging clock started (first use).
int64_t MonotonicLogMicros();

/// Dense id of the calling thread: 0, 1, 2, ... in first-log order.
int LogThreadId();

/// Accumulates one log line and emits it on destruction.
/// Not for direct use; see the JIM_LOG / JIM_CHECK macros below.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when the log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns a streamed expression into void so the ?: in JIM_CHECK type-checks.
/// operator& binds looser than operator<<, so the whole chain runs first.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace jim::util

/// Streams a message at the given severity: JIM_LOG(kInfo) << "hello";
/// kFatal aborts the process after emitting the message.
#define JIM_LOG(severity)                                           \
  ::jim::util::internal_logging::LogMessage(                        \
      ::jim::util::LogLevel::severity, __FILE__, __LINE__)          \
      .stream()

// The JIM_CHECK / JIM_DCHECK assertion family lives in util/check.h (which
// needs the LogMessage machinery above, hence the mutual include — both
// headers are guard-protected, so either include order works). Pulled in
// here so the many existing `#include "util/logging.h"` users keep seeing
// the macros.
#include "util/check.h"

#endif  // JIM_UTIL_LOGGING_H_
