#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace jim::util {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  JIM_CHECK_LE(lo, hi);
  const uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (range == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = max() - max() % range;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::UniformDouble() {
  // 53 high-quality bits into [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return UniformDouble() < p;
}

int64_t Rng::Zipf(int64_t n, double theta) {
  JIM_CHECK_GT(n, 0);
  theta = std::clamp(theta, 0.0, 0.999);
  // Inverse-CDF of a continuous approximation: x = n * u^(1/(1-theta)).
  const double u = UniformDouble();
  const double x = std::pow(u, 1.0 / (1.0 - theta)) * static_cast<double>(n);
  int64_t result = static_cast<int64_t>(x);
  return std::min(result, n - 1);
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> picked;
  if (k >= n) {
    picked.resize(n);
    for (size_t i = 0; i < n; ++i) picked[i] = i;
    return picked;
  }
  // Floyd's algorithm: k draws, no rejection loops.
  std::vector<size_t> chosen;
  chosen.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(j)));
    if (std::find(chosen.begin(), chosen.end(), t) != chosen.end()) {
      chosen.push_back(j);
    } else {
      chosen.push_back(t);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace jim::util
