#ifndef JIM_UTIL_RNG_H_
#define JIM_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace jim::util {

/// Deterministic, seedable pseudo-random number generator (xoshiro256**).
///
/// Every randomized component in JIM (random strategy, workload generators,
/// noisy crowd workers) takes an explicit `Rng`, so entire experiments are
/// reproducible from a single seed. The generator satisfies the C++
/// UniformRandomBitGenerator concept and can be used with <random>
/// distributions, but the convenience methods below are preferred because
/// their results are identical across standard library implementations.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the state with splitmix64 applied to `seed`, per the xoshiro
  /// authors' recommendation. Distinct seeds give decorrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next 64 uniformly random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double UniformDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Geometric-ish skewed integer in [0, n): zipf-like selection used by
  /// workload generators to create skewed value distributions.
  /// `theta` in (0,1): 0 = uniform-ish, closer to 1 = more skew.
  int64_t Zipf(int64_t n, double theta);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Picks one element uniformly. Requires a non-empty vector.
  template <typename T>
  const T& PickOne(const std::vector<T>& items) {
    JIM_CHECK(!items.empty());
    return items[static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(items.size()) - 1))];
  }

  /// Samples `k` distinct indices from [0, n) (reservoir sampling); if
  /// k >= n returns all of [0, n). Result is in increasing order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

}  // namespace jim::util

#endif  // JIM_UTIL_RNG_H_
