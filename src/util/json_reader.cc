#include "util/json_reader.h"

#include <cerrno>
#include <cstdlib>

#include "util/string_util.h"

namespace jim::util {
namespace {

constexpr size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    RETURN_IF_ERROR(ParseValue(0, value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(std::string_view what) const {
    return InvalidArgumentError(
        StrFormat("json: %s at offset %zu", std::string(what).c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(size_t depth, JsonValue& out) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        RETURN_IF_ERROR(ParseString(s));
        out = JsonValue::Str(std::move(s));
        return OkStatus();
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::Null(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view word, JsonValue value, JsonValue& out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    out = std::move(value);
    return OkStatus();
  }

  Status ParseObject(size_t depth, JsonValue& out) {
    ++pos_;  // '{'
    out = JsonValue::Object();
    auto& members = out.MutableObject();
    SkipWhitespace();
    if (Consume('}')) return OkStatus();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key");
      }
      std::string key;
      RETURN_IF_ERROR(ParseString(key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      JsonValue member;
      RETURN_IF_ERROR(ParseValue(depth + 1, member));
      members[std::move(key)] = std::move(member);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return OkStatus();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(size_t depth, JsonValue& out) {
    ++pos_;  // '['
    out = JsonValue::Array();
    auto& elements = out.MutableArray();
    SkipWhitespace();
    if (Consume(']')) return OkStatus();
    while (true) {
      SkipWhitespace();
      JsonValue element;
      RETURN_IF_ERROR(ParseValue(depth + 1, element));
      elements.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return OkStatus();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return OkStatus();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          RETURN_IF_ERROR(ParseHex4(cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (!Consume('\\') || !Consume('u')) {
              return Error("unpaired surrogate");
            }
            uint32_t low = 0;
            RETURN_IF_ERROR(ParseHex4(low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseHex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
      out = (out << 4) | digit;
    }
    return OkStatus();
  }

  static void AppendUtf8(uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue& out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      return Error("invalid number");
    }
    // JSON forbids leading zeros: "0" is fine, "01" is not.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("invalid number");
    }
    bool integral = true;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      auto parsed = ParseInt64(token);
      if (parsed.ok()) {
        out = JsonValue::Int(*parsed);
        return OkStatus();
      }
      // Out-of-int64-range integral token: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      return Error("number out of range");
    }
    out = JsonValue::Double(d);
    return OkStatus();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(int64_t n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.int_valid_ = true;
  v.int_ = n;
  v.double_ = static_cast<double>(n);
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  if (!is_bool()) std::abort();
  return bool_;
}

int64_t JsonValue::AsInt64() const {
  if (!is_int()) std::abort();
  return int_;
}

double JsonValue::AsDouble() const {
  if (!is_number()) std::abort();
  return double_;
}

const std::string& JsonValue::AsString() const {
  if (!is_string()) std::abort();
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  if (!is_array()) std::abort();
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  if (!is_object()) std::abort();
  return object_;
}

std::vector<JsonValue>& JsonValue::MutableArray() {
  if (!is_array()) std::abort();
  return array_;
}

std::map<std::string, JsonValue>& JsonValue::MutableObject() {
  if (!is_object()) std::abort();
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_string()) return std::string(fallback);
  return member->AsString();
}

int64_t JsonValue::GetInt(std::string_view key, int64_t fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_int()) return fallback;
  return member->AsInt64();
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || !member->is_bool()) return fallback;
  return member->AsBool();
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace jim::util
