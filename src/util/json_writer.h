#ifndef JIM_UTIL_JSON_WRITER_H_
#define JIM_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace jim::util {

/// Streaming JSON emitter used to dump machine-readable bench results
/// alongside the human-readable tables. Produces compact, valid JSON;
/// nesting is the caller's responsibility (unbalanced Begin/End pairs are
/// caught by a depth check in End*).
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the key of a key/value pair inside an object.
  JsonWriter& Key(std::string_view name);

  JsonWriter& Value(std::string_view text);
  JsonWriter& Value(const char* text);
  JsonWriter& Value(int64_t number);
  JsonWriter& Value(int number);
  JsonWriter& Value(size_t number);
  JsonWriter& Value(double number);
  JsonWriter& Value(bool flag);

  /// Shorthand: Key(name) then Value(v).
  template <typename T>
  JsonWriter& KeyValue(std::string_view name, const T& v) {
    Key(name);
    return Value(v);
  }

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void Escape(std::string_view text);

  std::string out_;
  // Tracks whether a value has been written at each nesting level.
  std::string stack_;  // 'o' = object, 'a' = array
  bool need_comma_ = false;
  bool after_key_ = false;
};

}  // namespace jim::util

#endif  // JIM_UTIL_JSON_WRITER_H_
