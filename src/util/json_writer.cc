#include "util/json_writer.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace jim::util {

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) out_.push_back(',');
}

void JsonWriter::Escape(std::string_view text) {
  out_.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += StrFormat("\\u%04x", c);
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  stack_.push_back('o');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  JIM_CHECK(!stack_.empty() && stack_.back() == 'o');
  stack_.pop_back();
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  stack_.push_back('a');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  JIM_CHECK(!stack_.empty() && stack_.back() == 'a');
  stack_.pop_back();
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  JIM_CHECK(!stack_.empty() && stack_.back() == 'o');
  MaybeComma();
  Escape(name);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view text) {
  MaybeComma();
  Escape(text);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const char* text) {
  return Value(std::string_view(text));
}

JsonWriter& JsonWriter::Value(int64_t number) {
  MaybeComma();
  out_ += std::to_string(number);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(int number) {
  return Value(static_cast<int64_t>(number));
}

JsonWriter& JsonWriter::Value(size_t number) {
  return Value(static_cast<int64_t>(number));
}

JsonWriter& JsonWriter::Value(double number) {
  MaybeComma();
  out_ += StrFormat("%.10g", number);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(bool flag) {
  MaybeComma();
  out_ += flag ? "true" : "false";
  need_comma_ = true;
  return *this;
}

}  // namespace jim::util
