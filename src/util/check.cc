#include "util/check.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace jim::util {

namespace {

/// -1 = not yet resolved, 0 = off, 1 = on. Relaxed ordering suffices: the
/// flag is monotone per process modulo explicit Set calls, and a stale read
/// can at worst run (or skip) one audit — never corrupt state.
std::atomic<int> g_audit_state{-1};

bool ResolveDefault() {
#ifdef JIM_AUDIT_INVARIANTS
  return true;
#else
  const char* env = std::getenv("JIM_AUDIT_INVARIANTS");
  return env != nullptr && *env != '\0' && std::string_view(env) != "0";
#endif
}

}  // namespace

bool AuditInvariantsEnabled() {
  int state = g_audit_state.load(std::memory_order_relaxed);
  if (state < 0) {
    state = ResolveDefault() ? 1 : 0;
    g_audit_state.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void SetAuditInvariants(bool enabled) {
  g_audit_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace jim::util
