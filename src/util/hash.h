#ifndef JIM_UTIL_HASH_H_
#define JIM_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace jim::util {

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe, 64-bit).
template <typename T>
void HashCombine(size_t& seed, const T& value) {
  seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ull + (seed << 12) +
          (seed >> 4);
}

/// Hashes a range of elements order-sensitively.
template <typename It>
size_t HashRange(It first, It last) {
  size_t seed = 0xcbf29ce484222325ull;
  for (; first != last; ++first) {
    HashCombine(seed, *first);
  }
  return seed;
}

inline constexpr uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv1a64Prime = 0x100000001b3ull;

/// FNV-1a over a range of integral values, one 32-bit word per element.
/// The shared recipe behind Partition::Fingerprint and the inference
/// StateKey hash; `seed` lets callers fold extra context (e.g. length) in.
template <typename It>
uint64_t Fnv1a64(It first, It last, uint64_t seed = kFnv1a64OffsetBasis) {
  uint64_t h = seed;
  for (; first != last; ++first) {
    h = (h ^ static_cast<uint64_t>(static_cast<uint32_t>(*first))) *
        kFnv1a64Prime;
  }
  return h;
}

}  // namespace jim::util

#endif  // JIM_UTIL_HASH_H_
