#ifndef JIM_UTIL_HASH_H_
#define JIM_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace jim::util {

/// Mixes `value`'s hash into `seed` (boost::hash_combine recipe, 64-bit).
template <typename T>
void HashCombine(size_t& seed, const T& value) {
  seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ull + (seed << 12) +
          (seed >> 4);
}

/// Hashes a range of elements order-sensitively.
template <typename It>
size_t HashRange(It first, It last) {
  size_t seed = 0xcbf29ce484222325ull;
  for (; first != last; ++first) {
    HashCombine(seed, *first);
  }
  return seed;
}

}  // namespace jim::util

#endif  // JIM_UTIL_HASH_H_
