#ifndef JIM_UTIL_STATUS_H_
#define JIM_UTIL_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace jim::util {

/// Canonical error space, modeled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  /// A transient failure (interrupted syscall, busy resource, table-full
  /// races): retrying the same operation after a backoff may succeed.
  /// storage::RetryWithBackoff retries exactly this code.
  kUnavailable = 9,
};

/// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// JIM follows the Google style guide: no exceptions cross public API
/// boundaries. Fallible operations return `Status` (or `StatusOr<T>`); callers
/// either handle the error or use `RETURN_IF_ERROR` to propagate it.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Factory helpers, mirroring absl::InvalidArgumentError etc.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);

/// Either a value of type `T` or an error `Status`. Never both.
///
/// Accessing the value of a non-OK StatusOr aborts the process (this is a
/// programming error, equivalent to dereferencing a disengaged optional).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      // An OK status carries no value; this is a caller bug.
      status_ = Status(StatusCode::kInternal,
                       "StatusOr constructed from OK status without a value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void AbortIfNotOk() const {
    if (!ok()) {
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace jim::util

/// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                       \
  do {                                              \
    ::jim::util::Status _status = (expr);           \
    if (!_status.ok()) return _status;              \
  } while (false)

#define JIM_STATUS_CONCAT_INNER_(x, y) x##y
#define JIM_STATUS_CONCAT_(x, y) JIM_STATUS_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a StatusOr), propagating the error or binding the value.
/// Usage: ASSIGN_OR_RETURN(auto rel, catalog.Get("orders"));
#define ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  auto JIM_STATUS_CONCAT_(_statusor_, __LINE__) = (rexpr);            \
  if (!JIM_STATUS_CONCAT_(_statusor_, __LINE__).ok())                 \
    return JIM_STATUS_CONCAT_(_statusor_, __LINE__).status();         \
  lhs = std::move(JIM_STATUS_CONCAT_(_statusor_, __LINE__)).value()

#endif  // JIM_UTIL_STATUS_H_
