#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace jim::util {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(sep);
    result.append(parts[i]);
  }
  return result;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string result(input);
  for (char& c : result) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return result;
}

std::string ToUpper(std::string_view input) {
  std::string result(input);
  for (char& c : result) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return result;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

StatusOr<int64_t> ParseInt64(std::string_view text) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) {
    return InvalidArgumentError("cannot parse empty string as int64");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE) {
    return OutOfRangeError("int64 out of range: '" + buffer + "'");
  }
  if (end != buffer.c_str() + buffer.size()) {
    return InvalidArgumentError("trailing characters in int64: '" + buffer + "'");
  }
  return static_cast<int64_t>(value);
}

StatusOr<double> ParseDouble(std::string_view text) {
  std::string buffer(StripWhitespace(text));
  if (buffer.empty()) {
    return InvalidArgumentError("cannot parse empty string as double");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE) {
    return OutOfRangeError("double out of range: '" + buffer + "'");
  }
  if (end != buffer.c_str() + buffer.size()) {
    return InvalidArgumentError("trailing characters in double: '" + buffer + "'");
  }
  return value;
}

std::string FormatDouble(double value) {
  std::string text = StrFormat("%.6g", value);
  return text;
}

std::string WithThousandsSeparators(int64_t n) {
  const bool negative = n < 0;
  std::string digits = std::to_string(negative ? -n : n);
  std::string grouped;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) grouped.push_back(',');
    grouped.push_back(*it);
    ++count;
  }
  if (negative) grouped.push_back('-');
  return std::string(grouped.rbegin(), grouped.rend());
}

}  // namespace jim::util
