#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace jim::util {

namespace {

/// Shared CSV state machine. Parses `content` (which may contain newlines)
/// into records. If `single_line` is true, newlines outside quotes are an
/// error instead of record separators.
StatusOr<std::vector<std::vector<std::string>>> ParseImpl(
    std::string_view content, char delim, bool single_line) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool any_char_in_record = false;

  auto end_field = [&]() {
    fields.push_back(std::move(current));
    current.clear();
    field_was_quoted = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(fields));
    fields.clear();
    any_char_in_record = false;
  };

  // Skip a UTF-8 byte-order mark.
  if (content.size() >= 3 && content[0] == '\xEF' && content[1] == '\xBB' &&
      content[2] == '\xBF') {
    content.remove_prefix(3);
  }

  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
      any_char_in_record = true;
      continue;
    }
    if (c == '"') {
      if (!current.empty() || field_was_quoted) {
        return InvalidArgumentError(
            "unexpected quote inside unquoted CSV field");
      }
      in_quotes = true;
      field_was_quoted = true;
      any_char_in_record = true;
    } else if (c == delim) {
      end_field();
      any_char_in_record = true;
    } else if (c == '\r' && i + 1 < content.size() && content[i + 1] == '\n') {
      // Normalized below by the '\n' branch.
      continue;
    } else if (c == '\n') {
      if (single_line) {
        return InvalidArgumentError("newline in single-line CSV input");
      }
      end_record();
    } else {
      current.push_back(c);
      any_char_in_record = true;
    }
  }
  if (in_quotes) {
    return InvalidArgumentError("unterminated quoted CSV field");
  }
  // Emit the final record unless the input ended with a newline and the
  // trailing record is completely empty.
  if (any_char_in_record || !fields.empty() ||
      (single_line && records.empty())) {
    end_record();
  }
  if (single_line && records.empty()) {
    records.push_back({});
  }
  return records;
}

}  // namespace

StatusOr<std::vector<std::string>> ParseCsvLine(std::string_view line,
                                                char delim) {
  auto records = ParseImpl(line, delim, /*single_line=*/true);
  if (!records.ok()) return records.status();
  if (records->empty()) return std::vector<std::string>{std::string()};
  return std::move((*records)[0]);
}

StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view content, char delim) {
  return ParseImpl(content, delim, /*single_line=*/false);
}

std::string FormatCsvLine(const std::vector<std::string>& fields, char delim) {
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(delim);
    const std::string& field = fields[i];
    const bool needs_quotes =
        field.find_first_of(std::string({delim, '"', '\n', '\r'})) !=
        std::string::npos;
    if (!needs_quotes) {
      line += field;
      continue;
    }
    line.push_back('"');
    for (char c : field) {
      if (c == '"') line.push_back('"');
      line.push_back(c);
    }
    line.push_back('"');
  }
  return line;
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return NotFoundError("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return InternalError("cannot open file for writing: " + path);
  }
  file.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!file) {
    return InternalError("short write to file: " + path);
  }
  return OkStatus();
}

}  // namespace jim::util
