#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace jim::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)),
      alignments_(header_.size(), Align::kLeft) {}

void TablePrinter::SetAlignments(std::vector<Align> alignments) {
  JIM_CHECK_EQ(alignments.size(), header_.size());
  alignments_ = std::move(alignments);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  JIM_CHECK_EQ(row.size(), header_.size());
  Row r;
  r.cells = std::move(row);
  r.separator_before = pending_separator_;
  pending_separator_ = false;
  rows_.push_back(std::move(r));
}

void TablePrinter::AddSeparator() { pending_separator_ = true; }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto rule = [&]() {
    std::string line = "+";
    for (size_t w : widths) {
      line += std::string(w + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto format_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      const size_t pad = widths[c] - cells[c].size();
      line += " ";
      if (alignments_[c] == Align::kRight) {
        line += std::string(pad, ' ') + cells[c];
      } else {
        line += cells[c] + std::string(pad, ' ');
      }
      line += " |";
    }
    line += "\n";
    return line;
  };

  std::string out = rule();
  out += format_row(header_);
  out += rule();
  for (const Row& row : rows_) {
    if (row.separator_before) out += rule();
    out += format_row(row.cells);
  }
  out += rule();
  return out;
}

std::string BarChart(const std::vector<std::pair<std::string, double>>& bars,
                     size_t max_width) {
  double max_value = 0;
  size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream out;
  for (const auto& [label, value] : bars) {
    const size_t len =
        max_value > 0
            ? static_cast<size_t>(value / max_value * static_cast<double>(max_width) + 0.5)
            : 0;
    out << "  " << label << std::string(label_width - label.size(), ' ')
        << " |" << std::string(len, '#') << " " << FormatDouble(value) << "\n";
  }
  return out.str();
}

}  // namespace jim::util
