#include "storage/metrics_env.h"

#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace jim::storage {

namespace {

/// Local relaxed bump + mirrored registry counter. The mirror is a
/// JIM_COUNT-style site, so the registry only sees traffic while metrics
/// are enabled; the local tally is unconditional (tests rely on it).
void Bump(std::atomic<uint64_t>& cell, uint64_t n = 1) {
  cell.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

/// Counts Append/Sync/Close on behalf of the owning MetricsEnv, then
/// forwards to the wrapped handle.
class MetricsWritableFile final : public WritableFile {
 public:
  MetricsWritableFile(MetricsEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  util::Status Append(const void* data, size_t size) override {
    Bump(env_->counts_.appends);
    Bump(env_->counts_.append_bytes, size);
    JIM_COUNT(obs::kCounterStorageAppends);
    JIM_COUNT_N(obs::kCounterStorageAppendBytes, size);
    util::Status status = base_->Append(data, size);
    env_->CountFailure(status);
    return status;
  }

  util::Status Sync() override {
    Bump(env_->counts_.fsyncs);
    JIM_COUNT(obs::kCounterStorageFsyncs);
    util::Status status = base_->Sync();
    env_->CountFailure(status);
    return status;
  }

  util::Status Close() override {
    Bump(env_->counts_.closes);
    util::Status status = base_->Close();
    env_->CountFailure(status);
    return status;
  }

  const std::string& path() const override { return base_->path(); }

 private:
  MetricsEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

MetricsEnv::MetricsEnv(Env* base)
    : base_(base != nullptr ? base : DefaultEnv()) {}

MetricsEnv::Counts MetricsEnv::counts() const {
  Counts out;
  out.creates = counts_.creates.load(std::memory_order_relaxed);
  out.appends = counts_.appends.load(std::memory_order_relaxed);
  out.append_bytes = counts_.append_bytes.load(std::memory_order_relaxed);
  out.fsyncs = counts_.fsyncs.load(std::memory_order_relaxed);
  out.closes = counts_.closes.load(std::memory_order_relaxed);
  out.reads = counts_.reads.load(std::memory_order_relaxed);
  out.read_bytes = counts_.read_bytes.load(std::memory_order_relaxed);
  out.mmaps = counts_.mmaps.load(std::memory_order_relaxed);
  out.mmap_bytes = counts_.mmap_bytes.load(std::memory_order_relaxed);
  out.stats = counts_.stats.load(std::memory_order_relaxed);
  out.renames = counts_.renames.load(std::memory_order_relaxed);
  out.dir_syncs = counts_.dir_syncs.load(std::memory_order_relaxed);
  out.lists = counts_.lists.load(std::memory_order_relaxed);
  out.removes = counts_.removes.load(std::memory_order_relaxed);
  out.mkdirs = counts_.mkdirs.load(std::memory_order_relaxed);
  out.sleeps = counts_.sleeps.load(std::memory_order_relaxed);
  out.micros_slept = counts_.micros_slept.load(std::memory_order_relaxed);
  out.failures = counts_.failures.load(std::memory_order_relaxed);
  return out;
}

void MetricsEnv::ResetCounts() {
  counts_.creates.store(0, std::memory_order_relaxed);
  counts_.appends.store(0, std::memory_order_relaxed);
  counts_.append_bytes.store(0, std::memory_order_relaxed);
  counts_.fsyncs.store(0, std::memory_order_relaxed);
  counts_.closes.store(0, std::memory_order_relaxed);
  counts_.reads.store(0, std::memory_order_relaxed);
  counts_.read_bytes.store(0, std::memory_order_relaxed);
  counts_.mmaps.store(0, std::memory_order_relaxed);
  counts_.mmap_bytes.store(0, std::memory_order_relaxed);
  counts_.stats.store(0, std::memory_order_relaxed);
  counts_.renames.store(0, std::memory_order_relaxed);
  counts_.dir_syncs.store(0, std::memory_order_relaxed);
  counts_.lists.store(0, std::memory_order_relaxed);
  counts_.removes.store(0, std::memory_order_relaxed);
  counts_.mkdirs.store(0, std::memory_order_relaxed);
  counts_.sleeps.store(0, std::memory_order_relaxed);
  counts_.micros_slept.store(0, std::memory_order_relaxed);
  counts_.failures.store(0, std::memory_order_relaxed);
}

void MetricsEnv::CountFailure(const util::Status& status) {
  if (!status.ok()) {
    Bump(counts_.failures);
    JIM_COUNT(obs::kCounterStorageFailures);
  }
}

util::StatusOr<std::unique_ptr<WritableFile>> MetricsEnv::NewWritableFile(
    const std::string& path) {
  Bump(counts_.creates);
  JIM_COUNT(obs::kCounterStorageCreates);
  auto file = base_->NewWritableFile(path);
  if (!file.ok()) {
    CountFailure(file.status());
    return file.status();
  }
  return std::unique_ptr<WritableFile>(
      new MetricsWritableFile(this, std::move(file.value())));
}

util::StatusOr<std::string> MetricsEnv::ReadFileToString(
    const std::string& path) {
  Bump(counts_.reads);
  JIM_COUNT(obs::kCounterStorageReads);
  auto contents = base_->ReadFileToString(path);
  if (!contents.ok()) {
    CountFailure(contents.status());
    return contents;
  }
  Bump(counts_.read_bytes, contents.value().size());
  JIM_COUNT_N(obs::kCounterStorageReadBytes, contents.value().size());
  return contents;
}

util::StatusOr<std::unique_ptr<ReadRegion>> MetricsEnv::MapReadOnly(
    const std::string& path) {
  Bump(counts_.mmaps);
  JIM_COUNT(obs::kCounterStorageMmaps);
  auto region = base_->MapReadOnly(path);
  if (!region.ok()) {
    CountFailure(region.status());
    return region;
  }
  Bump(counts_.mmap_bytes, region.value()->size());
  JIM_COUNT_N(obs::kCounterStorageMmapBytes, region.value()->size());
  return region;
}

util::StatusOr<uint64_t> MetricsEnv::FileSize(const std::string& path) {
  Bump(counts_.stats);
  JIM_COUNT(obs::kCounterStorageStats);
  auto size = base_->FileSize(path);
  if (!size.ok()) CountFailure(size.status());
  return size;
}

util::Status MetricsEnv::RenameReplacing(const std::string& from,
                                         const std::string& to) {
  Bump(counts_.renames);
  JIM_COUNT(obs::kCounterStorageRenames);
  util::Status status = base_->RenameReplacing(from, to);
  CountFailure(status);
  return status;
}

util::Status MetricsEnv::SyncDirectory(const std::string& dir) {
  Bump(counts_.dir_syncs);
  JIM_COUNT(obs::kCounterStorageDirSyncs);
  util::Status status = base_->SyncDirectory(dir);
  CountFailure(status);
  return status;
}

util::StatusOr<std::vector<std::string>> MetricsEnv::ListDirectory(
    const std::string& dir) {
  Bump(counts_.lists);
  JIM_COUNT(obs::kCounterStorageLists);
  auto entries = base_->ListDirectory(dir);
  if (!entries.ok()) CountFailure(entries.status());
  return entries;
}

util::Status MetricsEnv::RemoveFile(const std::string& path) {
  Bump(counts_.removes);
  JIM_COUNT(obs::kCounterStorageRemoves);
  util::Status status = base_->RemoveFile(path);
  CountFailure(status);
  return status;
}

util::Status MetricsEnv::CreateDirectories(const std::string& dir) {
  Bump(counts_.mkdirs);
  JIM_COUNT(obs::kCounterStorageMkdirs);
  util::Status status = base_->CreateDirectories(dir);
  CountFailure(status);
  return status;
}

void MetricsEnv::SleepForMicros(uint64_t micros) {
  Bump(counts_.sleeps);
  Bump(counts_.micros_slept, micros);
  JIM_COUNT(obs::kCounterStorageRetries);
  base_->SleepForMicros(micros);
}

}  // namespace jim::storage
