#ifndef JIM_STORAGE_SNAPSHOT_H_
#define JIM_STORAGE_SNAPSHOT_H_

#include <string>

#include "core/tuple_store.h"
#include "relational/catalog.h"
#include "relational/relation.h"
#include "storage/env.h"
#include "util/status.h"

namespace jim::storage {

/// On-disk catalog snapshots: one JIMC file per relation plus a manifest, so
/// a whole instance (the relations a session's universal tables are built
/// from) outlives the process and reopens without re-parsing CSVs or
/// re-encoding dictionaries.
///
/// Layout under `dir`:
///   catalog.jimm   manifest: "<escaped relation name>\t<file name>" lines
///   <sanitized name>.g<generation>.jimc   one columnar store per relation
///
/// Re-saving writes a fresh generation of relation files, swings the
/// manifest atomically, then garbage-collects superseded generations — a
/// crash at any point leaves a loadable all-old or all-new snapshot, never
/// a mix.
inline constexpr const char* kCatalogManifest = "catalog.jimm";

/// Options shared by SaveCatalog/LoadCatalog.
struct SnapshotOptions {
  /// Filesystem to go through (nullptr → DefaultEnv()).
  Env* env = nullptr;
  /// Retry policy for transient (kUnavailable) I/O errors on each atomic
  /// write — relation files and the manifest swing (see env.h).
  RetryPolicy retry;
};

/// Writes every relation of `catalog` into `dir` (created if missing). Each
/// relation is persisted through its dictionary-encoded RelationTupleStore
/// wrap, so what lands on disk is codes + dictionary pages, not CSV text.
util::Status SaveCatalog(const rel::Catalog& catalog, const std::string& dir,
                         const SnapshotOptions& options = {});

/// Reopens a SaveCatalog snapshot into a fresh catalog. Relations are
/// decoded out of their mapped stores (catalog relations are the *sources* —
/// typically orders of magnitude smaller than the universal tables built
/// over them, which stay mapped and are never materialized). Staging
/// leftovers of a crashed save (`*.tmp`) are ignored — only
/// manifest-referenced files are ever opened — and swept best-effort after
/// a successful load.
util::StatusOr<rel::Catalog> LoadCatalog(const std::string& dir,
                                         const SnapshotOptions& options = {});

/// Decodes every tuple of `store` into a materialized Relation (the O(N·n)
/// representation mapped stores exist to avoid — for export, small
/// instances, and the selection-inference path that still wants Value rows).
rel::Relation MaterializeStore(const core::TupleStore& store);

}  // namespace jim::storage

#endif  // JIM_STORAGE_SNAPSHOT_H_
