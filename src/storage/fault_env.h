#ifndef JIM_STORAGE_FAULT_ENV_H_
#define JIM_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/status.h"

namespace jim::storage {

/// A deterministic fault-injecting Env for crash-recovery testing.
///
/// Every Env operation is counted and labeled (the *schedule*), so a test
/// can first run a storage operation cleanly to learn its syscall schedule,
/// then re-run it with a fault armed at each index in turn — exhaustive
/// crash-point enumeration instead of sampling.
///
/// Writes are virtual: they mutate an in-memory filesystem model (inodes +
/// a volatile namespace + a durable namespace), never the real disk. The
/// model tracks exactly what POSIX guarantees would survive a power cut:
///   - appended bytes are durable only up to the last WritableFile::Sync
///     watermark (the fsync barrier actually issued);
///   - creations, renames, and removals are durable only once the parent
///     directory was SyncDirectory'd after them.
/// ReplayDurableInto materializes that durable state into a real directory
/// (through the base env), where recovery code can be exercised for real.
///
/// Reads (ReadFileToString / MapReadOnly / FileSize / ListDirectory) serve
/// model files first and fall through to the base env, so the same wrapper
/// also drives read-side faults — refused mmap (forcing the heap-reader
/// degradation path), short reads, and errno-classified failures — against
/// real on-disk files.
///
/// Faults:
///   FailAtOp(n, status)    operation #n returns `status`; later ops run
///                          normally (a transient blip — retry fodder).
///   CrashAtOp(n)           operation #n and every later one fail with
///                          kInternal "simulated power loss" and mutate
///                          nothing: the process is dead, only the durable
///                          prefix of the schedule survives.
///   ShortReadAtOp(n, k)    if operation #n is a whole-file read, only the
///                          first k bytes come back (a truncated-read
///                          image reaching the parser).
///   set_torn_write_bytes   when the faulted operation is an Append, this
///                          many bytes land before the failure — a write
///                          torn at an arbitrary byte boundary.
///   set_refuse_mmap        every MapReadOnly fails (kUnavailable), no
///                          matter the index — the degradation trigger.
///
/// Not thread-safe; fault schedules are a single-threaded test instrument.
class FaultInjectionEnv final : public Env {
 public:
  /// Wraps `base` (nullptr → DefaultEnv()).
  explicit FaultInjectionEnv(Env* base = nullptr);
  ~FaultInjectionEnv() override;

  // --- fault arming ------------------------------------------------------
  void FailAtOp(uint64_t op, util::Status error);
  void CrashAtOp(uint64_t op);
  void ShortReadAtOp(uint64_t op, size_t keep_bytes);
  void set_torn_write_bytes(size_t bytes) { torn_write_bytes_ = bytes; }
  void set_refuse_mmap(bool refuse) { refuse_mmap_ = refuse; }
  void ClearFaults();

  // --- introspection -----------------------------------------------------
  /// Operations seen so far (== the index the *next* operation will get).
  uint64_t op_count() const { return schedule_.size(); }
  /// One human-readable label per operation, in execution order.
  const std::vector<std::string>& schedule() const { return schedule_; }
  /// True once a CrashAtOp fault has fired: the model is frozen and every
  /// operation fails.
  bool dead() const { return dead_; }
  /// Backoff sleeps requested through the injectable clock (never actually
  /// slept — retry tests take no wall time).
  uint64_t sleeps_recorded() const { return sleeps_recorded_; }
  uint64_t micros_slept() const { return micros_slept_; }

  // --- power-cut recovery ------------------------------------------------
  enum class ReplayMode {
    /// Only fsync-barrier-durable state survives: data to its last Sync
    /// watermark, directory entries only if SyncDirectory'd. The
    /// worst-case (and guaranteed-reachable) post-crash filesystem.
    kStrict,
    /// The kernel happened to flush all metadata before the cut: the
    /// volatile namespace survives, but file *data* still only to its
    /// Sync watermark. The other reachable extreme; recovery must handle
    /// both (and everything between, which torn tails approximate).
    kMetadataFlushed,
  };

  /// Materializes the surviving filesystem state for the virtual directory
  /// `virtual_root` into the real directory `target_dir` (created through
  /// the base env). With `torn_seed` != 0, each file additionally keeps a
  /// seed-deterministic prefix of its unsynced tail — the torn-final-write
  /// images a real power cut produces.
  util::Status ReplayDurableInto(const std::string& virtual_root,
                                 const std::string& target_dir,
                                 ReplayMode mode,
                                 uint64_t torn_seed = 0) const;

  // --- Env ---------------------------------------------------------------
  util::StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  util::StatusOr<std::string> ReadFileToString(
      const std::string& path) override;
  util::StatusOr<std::unique_ptr<ReadRegion>> MapReadOnly(
      const std::string& path) override;
  util::StatusOr<uint64_t> FileSize(const std::string& path) override;
  util::Status RenameReplacing(const std::string& from,
                               const std::string& to) override;
  util::Status SyncDirectory(const std::string& dir) override;
  util::StatusOr<std::vector<std::string>> ListDirectory(
      const std::string& dir) override;
  util::Status RemoveFile(const std::string& path) override;
  util::Status CreateDirectories(const std::string& dir) override;
  void SleepForMicros(uint64_t micros) override;

 private:
  friend class FaultWritableFile;

  struct Inode {
    std::string content;
    /// Bytes guaranteed on the platter: prefix covered by the last Sync.
    size_t synced = 0;
  };
  enum class MetaOpKind { kLink, kRename, kUnlink };
  /// A directory-entry mutation not yet covered by a SyncDirectory.
  struct PendingMetaOp {
    MetaOpKind kind;
    std::string dir;   // parent whose fsync flushes this op
    std::string from;  // kRename only
    std::string path;  // the entry created/target-of-rename/removed
    size_t inode = 0;  // kLink/kRename
  };

  /// Counts + labels the operation and decides its fate. Returns OK to
  /// proceed; a fault status to fail. `torn_bytes` (Appends only) is how
  /// many bytes still land before the failure; `short_read_keep` is set
  /// when a short read should be served instead of an error.
  util::Status BeginOp(const std::string& label, size_t* torn_bytes,
                       std::optional<size_t>* short_read_keep);
  util::Status DeadStatus() const;

  Env* base_;
  std::vector<std::string> schedule_;
  bool dead_ = false;
  bool refuse_mmap_ = false;
  size_t torn_write_bytes_ = 0;
  uint64_t sleeps_recorded_ = 0;
  uint64_t micros_slept_ = 0;

  struct ArmedFault {
    uint64_t op = 0;
    enum class Kind { kError, kCrash, kShortRead } kind = Kind::kError;
    util::Status error;
    size_t short_read_keep = 0;
  };
  std::vector<ArmedFault> faults_;

  std::vector<Inode> inodes_;
  /// Live (process-visible) name → inode.
  std::map<std::string, size_t> volatile_ns_;
  /// Power-cut-durable name → inode (entries whose metadata op was
  /// directory-fsync'd).
  std::map<std::string, size_t> durable_ns_;
  std::vector<PendingMetaOp> pending_;
};

}  // namespace jim::storage

#endif  // JIM_STORAGE_FAULT_ENV_H_
