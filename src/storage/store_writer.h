#ifndef JIM_STORAGE_STORE_WRITER_H_
#define JIM_STORAGE_STORE_WRITER_H_

#include <cstddef>
#include <string>

#include "core/tuple_store.h"
#include "storage/env.h"
#include "util/status.h"

namespace jim::storage {

/// Options for WriteStore.
struct StoreWriterOptions {
  /// First tuple of the slice to persist.
  size_t first_tuple = 0;
  /// Tuple count of the slice; SIZE_MAX means "to the end". Slices are how a
  /// store gets split into the per-shard files a ShardedTupleStore reopens.
  size_t num_tuples = static_cast<size_t>(-1);
  /// Overrides the persisted store name (empty keeps store.name()).
  std::string name;
  /// Filesystem to write through (nullptr → DefaultEnv()).
  Env* env = nullptr;
  /// Transient I/O errors (Status kUnavailable — EINTR/EAGAIN-class) retry
  /// the whole atomic write up to max_attempts times with exponential
  /// backoff through the env's injectable clock.
  RetryPolicy retry;
};

/// Serializes `store` (any TupleStore — in-memory, factorized, mapped) into
/// a JIMC file at `path`, atomically: the bytes are staged in `path`.tmp and
/// renamed over the target only after a successful flush, so a crashed or
/// failed write never leaves a half-written file under the final name.
///
/// The file's shared-dictionary code space is a dense renumbering of the
/// codes the slice actually uses (first occurrence wins, row-major scan
/// order), so the file is self-contained: equality structure — the only
/// thing the inference engine consumes — is preserved exactly, including
/// NULL sentinels and the one-fresh-code-per-occurrence NaN discipline.
/// Values are decoded from the source store once per distinct code.
///
/// Writer memory is O(distinct codes + num_tuples × num_attributes × 4 B)
/// (the code matrix is staged columnar before writing); the *reader* side is
/// the memory-scalable one.
util::Status WriteStore(const core::TupleStore& store, const std::string& path,
                        const StoreWriterOptions& options = {});

}  // namespace jim::storage

#endif  // JIM_STORAGE_STORE_WRITER_H_
