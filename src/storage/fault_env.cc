#include "storage/fault_env.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace jim::storage {

namespace {

/// Heap-copy view of a model file (the fault env has no real pages to map).
class ModelRegion final : public ReadRegion {
 public:
  explicit ModelRegion(std::string bytes) : bytes_(std::move(bytes)) {}
  const uint8_t* data() const override {
    return reinterpret_cast<const uint8_t*>(bytes_.data());
  }
  size_t size() const override { return bytes_.size(); }
  bool zero_copy() const override { return false; }

 private:
  std::string bytes_;
};

/// splitmix64: the seed-deterministic stream behind torn-tail lengths.
uint64_t NextRandom(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

/// The writable-file side of the model: appends grow the inode, Sync moves
/// the durability watermark, and every call is a countable (faultable)
/// operation of the owning env.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, size_t inode, std::string path)
      : env_(env), inode_(inode), path_(std::move(path)) {}

  util::Status Append(const void* data, size_t size) override {
    size_t torn = 0;
    const util::Status status = env_->BeginOp(
        "append " + path_ + " (" + std::to_string(size) + " B)", &torn,
        nullptr);
    FaultInjectionEnv::Inode& inode = env_->inodes_[inode_];
    if (!status.ok()) {
      // The moment of failure may still land a prefix — a write torn at an
      // arbitrary byte boundary.
      if (torn > 0 && !closed_) {
        inode.content.append(static_cast<const char*>(data),
                             std::min(torn, size));
      }
      return status;
    }
    if (closed_) {
      return util::InternalError("write to closed file " + path_);
    }
    inode.content.append(static_cast<const char*>(data), size);
    return util::OkStatus();
  }

  util::Status Sync() override {
    RETURN_IF_ERROR(env_->BeginOp("fsync " + path_, nullptr, nullptr));
    if (closed_) {
      return util::InternalError("fsync on closed file " + path_);
    }
    FaultInjectionEnv::Inode& inode = env_->inodes_[inode_];
    inode.synced = inode.content.size();
    return util::OkStatus();
  }

  util::Status Close() override {
    if (closed_) return util::OkStatus();
    RETURN_IF_ERROR(env_->BeginOp("close " + path_, nullptr, nullptr));
    closed_ = true;
    return util::OkStatus();
  }

  const std::string& path() const override { return path_; }

 private:
  FaultInjectionEnv* env_;
  size_t inode_;
  std::string path_;
  bool closed_ = false;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base != nullptr ? base : DefaultEnv()) {}

FaultInjectionEnv::~FaultInjectionEnv() = default;

void FaultInjectionEnv::FailAtOp(uint64_t op, util::Status error) {
  ArmedFault fault;
  fault.op = op;
  fault.kind = ArmedFault::Kind::kError;
  fault.error = std::move(error);
  faults_.push_back(std::move(fault));
}

void FaultInjectionEnv::CrashAtOp(uint64_t op) {
  ArmedFault fault;
  fault.op = op;
  fault.kind = ArmedFault::Kind::kCrash;
  faults_.push_back(std::move(fault));
}

void FaultInjectionEnv::ShortReadAtOp(uint64_t op, size_t keep_bytes) {
  ArmedFault fault;
  fault.op = op;
  fault.kind = ArmedFault::Kind::kShortRead;
  fault.short_read_keep = keep_bytes;
  faults_.push_back(std::move(fault));
}

void FaultInjectionEnv::ClearFaults() { faults_.clear(); }

util::Status FaultInjectionEnv::DeadStatus() const {
  return util::InternalError(
      "simulated power loss: fault-injection environment is dead");
}

util::Status FaultInjectionEnv::BeginOp(
    const std::string& label, size_t* torn_bytes,
    std::optional<size_t>* short_read_keep) {
  const uint64_t index = schedule_.size();
  schedule_.push_back(label);
  if (dead_) return DeadStatus();
  for (auto it = faults_.begin(); it != faults_.end(); ++it) {
    if (it->op != index) continue;
    switch (it->kind) {
      case ArmedFault::Kind::kError: {
        const util::Status error = it->error;
        if (torn_bytes != nullptr) *torn_bytes = torn_write_bytes_;
        faults_.erase(it);  // one-shot: a retry of the op succeeds
        return error;
      }
      case ArmedFault::Kind::kCrash:
        dead_ = true;
        if (torn_bytes != nullptr) *torn_bytes = torn_write_bytes_;
        return DeadStatus();
      case ArmedFault::Kind::kShortRead:
        if (short_read_keep != nullptr) *short_read_keep = it->short_read_keep;
        faults_.erase(it);
        return util::OkStatus();
    }
  }
  return util::OkStatus();
}

util::StatusOr<std::unique_ptr<WritableFile>>
FaultInjectionEnv::NewWritableFile(const std::string& path) {
  RETURN_IF_ERROR(BeginOp("create " + path, nullptr, nullptr));
  // O_TRUNC semantics: the name now points at a fresh empty inode. Any old
  // inode stays reachable through the durable namespace until the
  // directory-entry change is fsync'd.
  const size_t inode = inodes_.size();
  inodes_.emplace_back();
  volatile_ns_[path] = inode;
  PendingMetaOp op;
  op.kind = MetaOpKind::kLink;
  op.dir = ParentDirectory(path);
  op.path = path;
  op.inode = inode;
  pending_.push_back(std::move(op));
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, inode, path));
}

util::StatusOr<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  std::optional<size_t> short_keep;
  RETURN_IF_ERROR(BeginOp("read " + path, nullptr, &short_keep));
  std::string contents;
  const auto it = volatile_ns_.find(path);
  if (it != volatile_ns_.end()) {
    contents = inodes_[it->second].content;
  } else {
    ASSIGN_OR_RETURN(contents, base_->ReadFileToString(path));
  }
  if (short_keep.has_value() && contents.size() > *short_keep) {
    contents.resize(*short_keep);
  }
  return contents;
}

util::StatusOr<std::unique_ptr<ReadRegion>> FaultInjectionEnv::MapReadOnly(
    const std::string& path) {
  RETURN_IF_ERROR(BeginOp("mmap " + path, nullptr, nullptr));
  if (refuse_mmap_) {
    return util::UnavailableError("injected mmap refusal on " + path);
  }
  const auto it = volatile_ns_.find(path);
  if (it == volatile_ns_.end()) return base_->MapReadOnly(path);
  const std::string& content = inodes_[it->second].content;
  if (content.empty()) {
    return util::InvalidArgumentError("cannot map " + path + ": empty file");
  }
  return std::unique_ptr<ReadRegion>(new ModelRegion(content));
}

util::StatusOr<uint64_t> FaultInjectionEnv::FileSize(
    const std::string& path) {
  RETURN_IF_ERROR(BeginOp("stat " + path, nullptr, nullptr));
  const auto it = volatile_ns_.find(path);
  if (it != volatile_ns_.end()) {
    return static_cast<uint64_t>(inodes_[it->second].content.size());
  }
  return base_->FileSize(path);
}

util::Status FaultInjectionEnv::RenameReplacing(const std::string& from,
                                                const std::string& to) {
  RETURN_IF_ERROR(BeginOp("rename " + from + " -> " + to, nullptr, nullptr));
  const auto it = volatile_ns_.find(from);
  if (it == volatile_ns_.end()) {
    // Not a model file: the caller is renaming something real.
    return base_->RenameReplacing(from, to);
  }
  const size_t inode = it->second;
  volatile_ns_.erase(it);
  volatile_ns_[to] = inode;
  PendingMetaOp op;
  op.kind = MetaOpKind::kRename;
  op.dir = ParentDirectory(to);
  op.from = from;
  op.path = to;
  op.inode = inode;
  pending_.push_back(std::move(op));
  return util::OkStatus();
}

util::Status FaultInjectionEnv::SyncDirectory(const std::string& dir) {
  RETURN_IF_ERROR(BeginOp("syncdir " + dir, nullptr, nullptr));
  // The fsync barrier: every pending directory-entry mutation under `dir`
  // becomes durable, in the order it was issued.
  auto cursor = pending_.begin();
  while (cursor != pending_.end()) {
    if (cursor->dir != dir) {
      ++cursor;
      continue;
    }
    switch (cursor->kind) {
      case MetaOpKind::kLink:
        durable_ns_[cursor->path] = cursor->inode;
        break;
      case MetaOpKind::kRename:
        durable_ns_.erase(cursor->from);
        durable_ns_[cursor->path] = cursor->inode;
        break;
      case MetaOpKind::kUnlink:
        durable_ns_.erase(cursor->path);
        break;
    }
    cursor = pending_.erase(cursor);
  }
  return util::OkStatus();
}

util::StatusOr<std::vector<std::string>> FaultInjectionEnv::ListDirectory(
    const std::string& dir) {
  RETURN_IF_ERROR(BeginOp("list " + dir, nullptr, nullptr));
  // Model entries under `dir`, merged with whatever really exists there (a
  // missing real directory just contributes nothing — the model is the
  // source of truth for virtual directories).
  std::vector<std::string> files;
  const auto base_listing = base_->ListDirectory(dir);
  if (base_listing.ok()) files = *base_listing;
  for (const auto& [name, inode] : volatile_ns_) {
    (void)inode;
    if (ParentDirectory(name) == dir) {
      files.push_back(name.substr(dir.size() + 1));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

util::Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  RETURN_IF_ERROR(BeginOp("remove " + path, nullptr, nullptr));
  const auto it = volatile_ns_.find(path);
  if (it == volatile_ns_.end()) return base_->RemoveFile(path);
  volatile_ns_.erase(it);
  PendingMetaOp op;
  op.kind = MetaOpKind::kUnlink;
  op.dir = ParentDirectory(path);
  op.path = path;
  pending_.push_back(std::move(op));
  return util::OkStatus();
}

util::Status FaultInjectionEnv::CreateDirectories(const std::string& dir) {
  RETURN_IF_ERROR(BeginOp("mkdir " + dir, nullptr, nullptr));
  // Virtual directories need no state: ListDirectory serves them from the
  // namespace, and files appear the moment they are created.
  return util::OkStatus();
}

void FaultInjectionEnv::SleepForMicros(uint64_t micros) {
  // The injectable clock: record the backoff, never actually sleep (and
  // never count it as a faultable operation — a sleep cannot fail).
  ++sleeps_recorded_;
  micros_slept_ += micros;
}

util::Status FaultInjectionEnv::ReplayDurableInto(
    const std::string& virtual_root, const std::string& target_dir,
    ReplayMode mode, uint64_t torn_seed) const {
  RETURN_IF_ERROR(base_->CreateDirectories(target_dir));
  const std::map<std::string, size_t>& ns =
      mode == ReplayMode::kStrict ? durable_ns_ : volatile_ns_;
  const std::string prefix = virtual_root + "/";
  uint64_t rng = torn_seed;
  for (const auto& [name, inode_id] : ns) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    const Inode& inode = inodes_[inode_id];
    // File data survives to its fsync watermark in either mode; with a torn
    // seed, a deterministic prefix of the unsynced tail survives too.
    std::string content = inode.content.substr(0, inode.synced);
    const size_t unsynced = inode.content.size() - inode.synced;
    if (torn_seed != 0 && unsynced > 0) {
      content += inode.content.substr(
          inode.synced,
          static_cast<size_t>(NextRandom(rng) % (unsynced + 1)));
    }
    const std::string out_path = target_dir + "/" + name.substr(prefix.size());
    if (name.find('/', prefix.size()) != std::string::npos) {
      RETURN_IF_ERROR(base_->CreateDirectories(ParentDirectory(out_path)));
    }
    auto file = base_->NewWritableFile(out_path);
    if (!file.ok()) return file.status();
    RETURN_IF_ERROR((*file)->Append(content));
    RETURN_IF_ERROR((*file)->Close());
  }
  return util::OkStatus();
}

}  // namespace jim::storage
