#include "storage/snapshot.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

#include "storage/env.h"
#include "storage/format.h"
#include "storage/mapped_store.h"
#include "storage/store_writer.h"
#include "util/string_util.h"

namespace jim::storage {

namespace {

/// Relation names are map keys, not file names; strip anything a filesystem
/// could object to, stamp the save generation in, and disambiguate
/// collisions with a numeric suffix. Collisions are detected
/// case-insensitively, so "Flights" and "flights" land in distinct files
/// even on case-insensitive filesystems (macOS/Windows), where they would
/// otherwise silently overwrite each other.
std::string SanitizeFileName(const std::string& name, size_t generation,
                             std::set<std::string>& taken) {
  std::string base;
  for (const char c : name) {
    base.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  if (base.empty()) base = "relation";
  const auto fold = [](const std::string& s) {
    std::string lower;
    for (const char c : s) {
      lower.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    }
    return lower;
  };
  const std::string suffix = ".g" + std::to_string(generation) + ".jimc";
  std::string candidate = base + suffix;
  for (size_t i = 2; !taken.insert(fold(candidate)).second; ++i) {
    candidate = base + "_" + std::to_string(i) + suffix;
  }
  return candidate;
}

/// Save generation embedded in "<base>.g<digits>.jimc", or nullopt.
std::optional<size_t> ParseGeneration(const std::string& file) {
  constexpr std::string_view kExtension = ".jimc";
  if (file.size() <= kExtension.size() ||
      file.compare(file.size() - kExtension.size(), kExtension.size(),
                   kExtension.data()) != 0) {
    return std::nullopt;
  }
  const std::string stem = file.substr(0, file.size() - kExtension.size());
  const size_t dot = stem.rfind(".g");
  if (dot == std::string::npos || dot + 2 >= stem.size()) return std::nullopt;
  size_t generation = 0;
  for (size_t i = dot + 2; i < stem.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(stem[i]))) {
      return std::nullopt;
    }
    generation = generation * 10 + static_cast<size_t>(stem[i] - '0');
  }
  return generation;
}

/// Manifest lines are "<name>\t<file>\n"; names are arbitrary strings, so
/// backslash-escape the three bytes that would corrupt the framing.
std::string EscapeManifestField(const std::string& field) {
  std::string escaped;
  escaped.reserve(field.size());
  for (const char c : field) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '\t':
        escaped += "\\t";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      default:
        escaped.push_back(c);
    }
  }
  return escaped;
}

util::StatusOr<std::string> UnescapeManifestField(const std::string& field) {
  std::string raw;
  raw.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\') {
      raw.push_back(field[i]);
      continue;
    }
    if (i + 1 >= field.size()) {
      return util::InvalidArgumentError(
          "manifest field ends mid-escape: " + field);
    }
    switch (field[++i]) {
      case '\\':
        raw.push_back('\\');
        break;
      case 't':
        raw.push_back('\t');
        break;
      case 'n':
        raw.push_back('\n');
        break;
      case 'r':
        raw.push_back('\r');
        break;
      default:
        return util::InvalidArgumentError(
            "unknown manifest escape in: " + field);
    }
  }
  return raw;
}

/// Best-effort sweep of crash leftovers under `dir`. Staging files — the
/// `.tmp` shadow of a generation file or of the manifest — are orphans by
/// the time any save or load runs: every completed atomic write renamed its
/// tmp away, and a crashed one left a file no manifest can reference (the
/// atomic-persist recipe writes data before swinging names). When
/// `referenced` is non-null (the save path), generation files outside it
/// are superseded and collected too; a load never removes generation files
/// (another manifest swing may be mid-flight). All failures are ignored:
/// the snapshot is already durable, and anything left behind is collected
/// by the next sweep.
void CollectStaleArtifacts(Env& env, const std::string& dir,
                           const std::set<std::string>* referenced) {
  const auto files = env.ListDirectory(dir);
  if (!files.ok()) return;
  constexpr std::string_view kTmpSuffix = ".tmp";
  for (const std::string& file : *files) {
    std::string stem = file;
    if (stem.size() > kTmpSuffix.size() &&
        stem.compare(stem.size() - kTmpSuffix.size(), kTmpSuffix.size(),
                     kTmpSuffix.data()) == 0) {
      stem.resize(stem.size() - kTmpSuffix.size());
    }
    const bool stale_tmp = stem.size() < file.size() &&
                           (ParseGeneration(stem).has_value() ||
                            stem == kCatalogManifest);
    const bool superseded = referenced != nullptr &&
                            stem.size() == file.size() &&
                            ParseGeneration(file).has_value() &&
                            referenced->count(file) == 0;
    if (stale_tmp || superseded) {
      (void)env.RemoveFile(dir + "/" + file);
    }
  }
}

}  // namespace

util::Status SaveCatalog(const rel::Catalog& catalog, const std::string& dir,
                         const SnapshotOptions& options) {
  Env& env = options.env != nullptr ? *options.env : *DefaultEnv();
  RETURN_IF_ERROR(env.CreateDirectories(dir));
  // Relation files carry a per-save generation stamp, so a re-save never
  // overwrites the files the *current* manifest references: new-generation
  // files land first, the manifest swings over atomically, and only then
  // are the superseded generations collected. A crash anywhere in between
  // leaves either the complete old snapshot or the complete new one —
  // never a mix of versions.
  size_t generation = 0;
  {
    // A failed listing would restart the generation counter and make the
    // writes below clobber the files the live manifest references — the
    // exact mixed-snapshot state the generations exist to rule out — so it
    // aborts the save.
    ASSIGN_OR_RETURN(const std::vector<std::string> existing_files,
                     env.ListDirectory(dir));
    for (const std::string& file : existing_files) {
      const auto existing = ParseGeneration(file);
      if (existing.has_value()) {
        generation = std::max(generation, *existing);
      }
    }
  }
  ++generation;

  std::string manifest;
  std::set<std::string> taken;
  std::set<std::string> referenced;
  StoreWriterOptions store_options;
  store_options.env = &env;
  store_options.retry = options.retry;
  for (const std::string& name : catalog.Names()) {
    ASSIGN_OR_RETURN(const auto relation, catalog.GetShared(name));
    const std::string file = SanitizeFileName(name, generation, taken);
    const auto store = core::MakeRelationStore(relation);
    RETURN_IF_ERROR(WriteStore(*store, dir + "/" + file, store_options));
    manifest += EscapeManifestField(name) + "\t" + file + "\n";
    referenced.insert(file);
  }
  // The manifest swing is what makes the new snapshot visible — atomic and
  // durable, so a crash mid-save can never truncate or mix an existing
  // snapshot.
  RETURN_IF_ERROR(RetryWithBackoff(env, options.retry, [&] {
    return WriteFileAtomically(env, dir + "/" + kCatalogManifest, manifest);
  }));
  // Superseded generations and staging files a crashed earlier save left
  // behind (this save's own renames all completed, so any .tmp here is an
  // orphan).
  CollectStaleArtifacts(env, dir, &referenced);
  return util::OkStatus();
}

util::StatusOr<rel::Catalog> LoadCatalog(const std::string& dir,
                                         const SnapshotOptions& options) {
  Env& env = options.env != nullptr ? *options.env : *DefaultEnv();
  const std::string manifest_path = dir + "/" + kCatalogManifest;
  auto manifest = env.ReadFileToString(manifest_path);
  if (!manifest.ok()) {
    if (manifest.status().code() == util::StatusCode::kNotFound) {
      return util::NotFoundError(
          util::StrFormat("LoadCatalog: no %s under %s", kCatalogManifest,
                          dir.c_str()));
    }
    return manifest.status();
  }
  rel::Catalog catalog;
  std::string_view rest = *manifest;
  size_t line_number = 0;
  while (!rest.empty()) {
    const size_t newline = rest.find('\n');
    const std::string line(rest.substr(
        0, newline == std::string_view::npos ? rest.size() : newline));
    rest.remove_prefix(newline == std::string_view::npos ? rest.size()
                                                         : newline + 1);
    ++line_number;
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos || tab == 0 || tab + 1 >= line.size()) {
      return util::InvalidArgumentError(util::StrFormat(
          "LoadCatalog: malformed manifest line %zu in %s", line_number,
          manifest_path.c_str()));
    }
    ASSIGN_OR_RETURN(const std::string name,
                     UnescapeManifestField(line.substr(0, tab)));
    const std::string file = line.substr(tab + 1);
    // SaveCatalog only ever emits bare sanitized file names; a separator
    // here is a crafted or corrupt manifest trying to read outside the
    // snapshot directory.
    if (file.find('/') != std::string::npos ||
        file.find('\\') != std::string::npos) {
      return util::InvalidArgumentError(util::StrFormat(
          "LoadCatalog: manifest line %zu names a file outside the "
          "snapshot directory: %s", line_number, file.c_str()));
    }
    ASSIGN_OR_RETURN(const auto store, OpenStore(dir + "/" + file, &env));
    rel::Relation relation = MaterializeStore(*store);
    relation.set_name(name);
    RETURN_IF_ERROR(catalog.Add(std::move(relation)));
  }
  // Everything referenced loaded; sweep the staging leftovers of any
  // crashed earlier save (ignored above by construction) so they do not
  // accumulate across crash-restart cycles. Generation files stay — only a
  // save knows which of them are superseded.
  CollectStaleArtifacts(env, dir, nullptr);
  return catalog;
}

rel::Relation MaterializeStore(const core::TupleStore& store) {
  rel::Relation relation{store.name(), store.schema()};
  relation.Reserve(store.num_tuples());
  for (size_t t = 0; t < store.num_tuples(); ++t) {
    relation.AddRowUnchecked(store.DecodeTuple(t));
  }
  return relation;
}

}  // namespace jim::storage
