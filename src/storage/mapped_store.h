#ifndef JIM_STORAGE_MAPPED_STORE_H_
#define JIM_STORAGE_MAPPED_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tuple_store.h"
#include "storage/env.h"
#include "util/status.h"

namespace jim::storage {

/// How to open a JIMC file.
struct OpenOptions {
  /// Filesystem to read through (nullptr → DefaultEnv()).
  Env* env = nullptr;
  /// Trusted reopen: skip the per-section checksum pass and the per-cell
  /// code-range scan, keeping only the structural checks (header, section
  /// bounds, name/schema parse, dictionary-page parse, code-array
  /// alignment/length). Meant for reopening files this process (or a
  /// previous incarnation of it, e.g. a restarting daemon) already opened
  /// under full validation — O(sections + distinct values) instead of a
  /// full sequential read of the file. A corrupt code that full validation
  /// would have rejected instead trips DecodeValue's JIM_CHECK backstop.
  bool trusted = false;
};

/// A TupleStore served straight from an mmap'd JIMC file (see
/// storage/format.h): `code()` / `TupleCodes()` are zero-copy loads from the
/// mapped per-column code arrays, and `DecodeValue()` parses the value
/// record out of the mapped dictionary pages on demand — no Value ever
/// materializes before someone asks for it. An engine built over a mapped
/// store therefore starts in O(sections + distinct values) work after one
/// sequential validation pass, not the O(N·n) hash-heavy ingest of the
/// in-memory path, and any number of sessions (BatchSessionRunner fan-outs
/// included) share one read-only mapping.
///
/// Open is strict: magic, version, header/section bounds, truncation,
/// per-section checksums, dictionary-page structure, and code ranges are all
/// verified before the first access, and every failure is a typed
/// util::Status naming the offending section — corrupt input can never reach
/// undefined behavior. The validation pass reads the file once,
/// sequentially; it is still far cheaper than re-encoding (no hashing, no
/// allocation per cell).
class MappedTupleStore final : public core::TupleStore {
 public:
  /// Maps and validates `path` through `env` (nullptr → DefaultEnv()).
  /// Errors: kNotFound for a missing file, kInvalidArgument for anything
  /// malformed (wrong magic/version, bounds, truncation, checksum mismatch,
  /// out-of-range codes, empty file), kUnimplemented on big-endian hosts.
  ///
  /// Graceful degradation: when the env refuses or fails the mapping for
  /// any reason other than those verdicts (no mmap on this host, injected
  /// refusal, transient failure), Open logs the downgrade and falls back to
  /// a heap copy with identical read semantics — zero_copy() then reports
  /// false.
  static util::StatusOr<std::shared_ptr<const MappedTupleStore>> Open(
      const std::string& path, Env* env = nullptr);

  /// As above, with explicit options (trusted reopen lives here).
  static util::StatusOr<std::shared_ptr<const MappedTupleStore>> Open(
      const std::string& path, const OpenOptions& options);

  ~MappedTupleStore() override = default;
  MappedTupleStore(const MappedTupleStore&) = delete;
  MappedTupleStore& operator=(const MappedTupleStore&) = delete;

  const std::string& name() const override { return name_; }
  const rel::Schema& schema() const override { return schema_; }
  size_t num_tuples() const override { return num_tuples_; }
  uint32_t code(size_t t, size_t a) const override {
    return column_codes_[a][t];
  }
  void TupleCodes(size_t t, uint32_t* out) const override {
    const size_t n = column_codes_.size();
    for (size_t a = 0; a < n; ++a) out[a] = column_codes_[a][t];
  }
  rel::Value DecodeValue(size_t t, size_t a) const override;

  /// Resident bytes: the open-time index structures only — the mapped file
  /// is shared, read-only page cache, not a per-store copy. The scalability
  /// bench reports file_bytes() next to this to show the split.
  size_t ApproxBytes() const override;

  /// Invariant audit (see util/check.h): the open-time index structures are
  /// coherent with the mapping — one code array per attribute, every mapped
  /// code inside the shared dictionary (or kNullCode), every dictionary
  /// offset inside the file, and every shared code decodable. Open already
  /// validated the bytes once; this re-derives the index-side contract, so
  /// tests can pin that validation and indexing never drift apart.
  /// O(N·n) integer reads + O(distinct) decodes.
  void CheckInvariants() const;

  /// Total size of the backing file.
  size_t file_bytes() const { return size_; }
  /// Distinct non-NULL values in the file's shared dictionary.
  size_t shared_dictionary_size() const { return value_offsets_.size(); }
  const std::string& path() const { return path_; }
  /// True when the bytes are served from an actual mapping (shared page
  /// cache); false on the graceful-degradation heap fallback.
  bool zero_copy() const { return region_->zero_copy(); }

 private:
  MappedTupleStore() = default;

  util::Status Parse(bool trusted);

  std::string path_;
  /// Owns the bytes: an mmap region or its heap-copy fallback. `data_` /
  /// `size_` cache region_->data()/size() for the hot read paths.
  std::unique_ptr<ReadRegion> region_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;

  std::string name_;
  rel::Schema schema_;
  size_t num_tuples_ = 0;
  /// Per attribute, the mapped code array (shared codes, kNullCode = NULL).
  std::vector<const uint32_t*> column_codes_;
  /// Shared code → absolute file offset of its value record, filled from the
  /// dictionary pages at open time (O(distinct values), the only index a
  /// lazy decode needs).
  std::vector<uint64_t> value_offsets_;
};

/// Opens `path` behind the TupleStore seam (the store factory the engine and
/// CLI consume).
util::StatusOr<std::shared_ptr<const core::TupleStore>> OpenStore(
    const std::string& path, Env* env = nullptr);

/// As above, with explicit options.
util::StatusOr<std::shared_ptr<const core::TupleStore>> OpenStore(
    const std::string& path, const OpenOptions& options);

}  // namespace jim::storage

#endif  // JIM_STORAGE_MAPPED_STORE_H_
