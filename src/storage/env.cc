#include "storage/env.h"

// The ONE translation unit in src/storage/ allowed to touch the filesystem
// directly (tools/lint_determinism.py raw-io rule): every stream, syscall,
// and std::filesystem mutation the storage tier performs lives here, behind
// the Env virtual interface, so FaultInjectionEnv can interpose on all of
// them.

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>

#include "util/string_util.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace jim::storage {

namespace {

/// Maps an errno to the canonical Status space, with strerror detail — the
/// typed classification every retry/fallback decision keys on.
util::Status ErrnoStatus(const std::string& context, int err) {
  const std::string message = util::StrFormat(
      "%s: %s (errno %d)", context.c_str(),
      std::generic_category().message(err).c_str(), err);
  switch (err) {
    case ENOENT:
#if defined(ENOTDIR)
    case ENOTDIR:
#endif
      return util::NotFoundError(message);
    case EINTR:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
#if defined(EMFILE)
    case EMFILE:
#endif
#if defined(ENFILE)
    case ENFILE:
#endif
      return util::UnavailableError(message);
    case ENOSPC:
#if defined(EDQUOT)
    case EDQUOT:
#endif
      return util::ResourceExhaustedError(message);
    default:
      return util::InternalError(message);
  }
}

class HeapRegion final : public ReadRegion {
 public:
  explicit HeapRegion(std::string bytes) : bytes_(std::move(bytes)) {}
  const uint8_t* data() const override {
    return reinterpret_cast<const uint8_t*>(bytes_.data());
  }
  size_t size() const override { return bytes_.size(); }
  bool zero_copy() const override { return false; }

 private:
  std::string bytes_;
};

#if !defined(_WIN32)

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  util::Status Append(const void* data, size_t size) override {
    if (fd_ < 0) {
      return util::InternalError("write to closed file " + path_);
    }
    const char* cursor = static_cast<const char*>(data);
    size_t left = size;
    while (left > 0) {
      const ssize_t written = ::write(fd_, cursor, left);
      if (written < 0) {
        if (errno == EINTR) continue;  // interrupted, not failed
        return ErrnoStatus("cannot write " + path_, errno);
      }
      cursor += written;
      left -= static_cast<size_t>(written);
    }
    return util::OkStatus();
  }

  util::Status Sync() override {
    if (fd_ < 0) {
      return util::InternalError("fsync on closed file " + path_);
    }
    if (::fsync(fd_) != 0) {
      return ErrnoStatus("fsync failed on " + path_, errno);
    }
    return util::OkStatus();
  }

  util::Status Close() override {
    if (fd_ < 0) return util::OkStatus();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return ErrnoStatus("cannot close " + path_, errno);
    }
    return util::OkStatus();
  }

  const std::string& path() const override { return path_; }

 private:
  int fd_;
  std::string path_;
};

class MmapRegion final : public ReadRegion {
 public:
  MmapRegion(const void* data, size_t size) : data_(data), size_(size) {}
  ~MmapRegion() override { ::munmap(const_cast<void*>(data_), size_); }
  const uint8_t* data() const override {
    return static_cast<const uint8_t*>(data_);
  }
  size_t size() const override { return size_; }
  bool zero_copy() const override { return true; }

 private:
  const void* data_;
  size_t size_;
};

#else  // _WIN32

/// Stream-backed fallback where the POSIX fd API is unavailable. Sync is a
/// flush only — no fsync primitive is exposed here, matching the previous
/// SyncPath no-op on this platform.
class StreamWritableFile final : public WritableFile {
 public:
  StreamWritableFile(std::ofstream out, std::string path)
      : out_(std::move(out)), path_(std::move(path)) {}

  util::Status Append(const void* data, size_t size) override {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    if (!out_.good()) return util::InternalError("cannot write " + path_);
    return util::OkStatus();
  }
  util::Status Sync() override {
    out_.flush();
    if (!out_.good()) return util::InternalError("flush failed on " + path_);
    return util::OkStatus();
  }
  util::Status Close() override {
    if (!out_.is_open()) return util::OkStatus();
    out_.close();
    if (out_.fail()) return util::InternalError("cannot close " + path_);
    return util::OkStatus();
  }
  const std::string& path() const override { return path_; }

 private:
  std::ofstream out_;
  std::string path_;
};

#endif  // _WIN32

class PosixEnv final : public Env {
 public:
  util::StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
#if !defined(_WIN32)
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      return ErrnoStatus("cannot open " + path + " for writing", errno);
    }
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
#else
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::InternalError("cannot open " + path + " for writing");
    }
    return std::unique_ptr<WritableFile>(
        new StreamWritableFile(std::move(out), path));
#endif
  }

  util::StatusOr<std::string> ReadFileToString(
      const std::string& path) override {
#if !defined(_WIN32)
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return ErrnoStatus("cannot open " + path, errno);
    }
    std::string contents;
    char buffer[1 << 16];
    for (;;) {
      const ssize_t got = ::read(fd, buffer, sizeof(buffer));
      if (got < 0) {
        if (errno == EINTR) continue;
        const util::Status status = ErrnoStatus("cannot read " + path, errno);
        ::close(fd);
        return status;
      }
      if (got == 0) break;
      contents.append(buffer, static_cast<size_t>(got));
    }
    ::close(fd);
    return contents;
#else
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) return util::NotFoundError("cannot open " + path);
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::string contents(static_cast<size_t>(size), '\0');
    if (size > 0 && !in.read(&contents[0], size)) {
      return util::InternalError("short read on " + path);
    }
    return contents;
#endif
  }

  util::StatusOr<std::unique_ptr<ReadRegion>> MapReadOnly(
      const std::string& path) override {
#if !defined(_WIN32)
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return ErrnoStatus("cannot open " + path, errno);
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const util::Status status = ErrnoStatus("fstat failed on " + path,
                                              errno);
      ::close(fd);
      return status;
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return util::InvalidArgumentError("cannot map " + path +
                                        ": empty file");
    }
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping holds its own reference
    if (mapping == MAP_FAILED) {
      return ErrnoStatus("mmap failed on " + path, errno);
    }
    return std::unique_ptr<ReadRegion>(new MmapRegion(mapping, size));
#else
    return util::UnimplementedError("mmap is unavailable on this platform");
#endif
  }

  util::StatusOr<uint64_t> FileSize(const std::string& path) override {
#if !defined(_WIN32)
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus("cannot stat " + path, errno);
    }
    return static_cast<uint64_t>(st.st_size);
#else
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) {
      return util::NotFoundError("cannot stat " + path + ": " + ec.message());
    }
    return static_cast<uint64_t>(size);
#endif
  }

  util::Status RenameReplacing(const std::string& from,
                               const std::string& to) override {
#if defined(_WIN32)
    // std::rename refuses to replace on Windows; removing first narrows but
    // does not close the non-atomicity window.
    std::remove(to.c_str());
#endif
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus(
          "cannot rename " + from + " into place as " + to, errno);
    }
    return util::OkStatus();
  }

  util::Status SyncDirectory(const std::string& dir) override {
#if defined(_WIN32)
    (void)dir;
    return util::OkStatus();
#else
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      return ErrnoStatus("cannot open directory " + dir + " for fsync",
                         errno);
    }
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync failed on directory " + dir, err);
    return util::OkStatus();
#endif
  }

  util::StatusOr<std::vector<std::string>> ListDirectory(
      const std::string& dir) override {
    // std::filesystem throws from mid-iteration readdir failures (the
    // error_code constructor does not cover them); convert to Status.
    std::vector<std::string> files;
    try {
      std::error_code ec;
      for (const auto& entry :
           std::filesystem::directory_iterator(dir, ec)) {
        files.push_back(entry.path().filename().string());
      }
      if (ec) {
        return util::InternalError(util::StrFormat(
            "cannot list %s: %s", dir.c_str(), ec.message().c_str()));
      }
    } catch (const std::filesystem::filesystem_error& error) {
      return util::InternalError(util::StrFormat(
          "cannot list %s: %s", dir.c_str(), error.what()));
    }
    return files;
  }

  util::Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      return ErrnoStatus("cannot remove " + path, errno);
    }
    return util::OkStatus();
  }

  util::Status CreateDirectories(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return util::InternalError(util::StrFormat(
          "cannot create %s: %s", dir.c_str(), ec.message().c_str()));
    }
    return util::OkStatus();
  }

  void SleepForMicros(uint64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

Env* DefaultEnv() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

std::unique_ptr<ReadRegion> NewHeapRegion(std::string contents) {
  return std::unique_ptr<ReadRegion>(new HeapRegion(std::move(contents)));
}

std::string ParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

util::Status RetryWithBackoff(Env& env, const RetryPolicy& policy,
                              const std::function<util::Status()>& attempt) {
  uint64_t backoff = policy.initial_backoff_micros;
  for (int tries = 1;; ++tries) {
    const util::Status status = attempt();
    if (status.code() != util::StatusCode::kUnavailable ||
        tries >= policy.max_attempts) {
      return status;
    }
    env.SleepForMicros(backoff);
    backoff *= policy.backoff_multiplier;
  }
}

util::Status WriteFileAtomicallyWith(
    Env& env, const std::string& path,
    const std::function<util::Status(WritableFile&)>& write) {
  const std::string tmp_path = path + ".tmp";
  {
    auto opened = env.NewWritableFile(tmp_path);
    if (!opened.ok()) return opened.status();
    std::unique_ptr<WritableFile> file = std::move(opened).value();
    util::Status written = write(*file);
    if (written.ok()) {
      // Data blocks must hit stable storage before the rename is journaled,
      // or a power cut could leave the final name pointing at garbage with
      // the previous good file already gone.
      written = file->Sync();
    }
    if (written.ok()) written = file->Close();
    if (!written.ok()) {
      (void)file->Close();
      (void)env.RemoveFile(tmp_path);  // best effort
      return written;
    }
  }
  {
    const util::Status renamed = env.RenameReplacing(tmp_path, path);
    if (!renamed.ok()) {
      (void)env.RemoveFile(tmp_path);  // best effort
      return renamed;
    }
  }
  // Persist the rename itself (the directory entry).
  return env.SyncDirectory(ParentDirectory(path));
}

util::Status WriteFileAtomically(Env& env, const std::string& path,
                                 const std::string& contents) {
  return WriteFileAtomicallyWith(env, path, [&contents](WritableFile& file) {
    return file.Append(contents);
  });
}

}  // namespace jim::storage
