#ifndef JIM_STORAGE_SHARDED_STORE_H_
#define JIM_STORAGE_SHARDED_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/tuple_store.h"
#include "util/status.h"

namespace jim::exec {
class ThreadPool;
}  // namespace jim::exec

namespace jim::storage {

/// Composes N TupleStores with one common schema into a single logical
/// store: tuple ids are routed by prefix sum (shard boundaries are exactly
/// the chunk boundaries the engine's ParallelFor class construction likes),
/// and every shard's code space is remapped into one composite shared
/// dictionary so the TupleStore contract — code equality ⇔ strict Value
/// equality, across shards included — keeps holding. Shards stay behind
/// shared_ptr and are typically MappedTupleStores over the per-shard files a
/// StoreWriter slice pass produced, but any mix of backends with equal
/// schemas composes.
///
/// The remap is built at Create time: each shard is scanned once for its
/// distinct codes (parallelizable across shards — the scan order within a
/// shard is deterministic), each distinct code's Value is decoded once, and
/// a serial merge in shard order folds them into the composite dictionary.
/// Costs O(Σ tuples·attrs) integer reads + O(distinct values) decodes; no
/// tuple Values ever materialize. NaN values keep one composite code per
/// distinct shard code (never equal to anything, matching NaN ≠ NaN), and
/// NULL routes through untouched.
class ShardedTupleStore final : public core::TupleStore {
 public:
  /// Builds the composition. Errors if `shards` is empty or the schemas
  /// disagree. `pool` parallelizes the per-shard distinct-code scan
  /// (nullptr = serial); the result is bitwise-identical either way.
  static util::StatusOr<std::shared_ptr<const ShardedTupleStore>> Create(
      std::string name,
      std::vector<std::shared_ptr<const core::TupleStore>> shards,
      exec::ThreadPool* pool = nullptr);

  const std::string& name() const override { return name_; }
  const rel::Schema& schema() const override { return shards_[0]->schema(); }
  size_t num_tuples() const override { return offsets_.back(); }
  uint32_t code(size_t t, size_t a) const override;
  void TupleCodes(size_t t, uint32_t* out) const override;
  rel::Value DecodeValue(size_t t, size_t a) const override;
  size_t ApproxBytes() const override;

  size_t num_shards() const { return shards_.size(); }
  const std::shared_ptr<const core::TupleStore>& shard(size_t s) const {
    return shards_[s];
  }
  /// Cumulative tuple counts: shard s owns global ids
  /// [offsets()[s], offsets()[s+1]). Size num_shards() + 1.
  const std::vector<size_t>& offsets() const { return offsets_; }
  /// (shard, tuple id within that shard) of global tuple `t`.
  std::pair<size_t, size_t> Locate(size_t t) const;
  /// Distinct non-NULL values across all shards after unification.
  size_t composite_dictionary_size() const { return composite_dict_size_; }

  /// Invariant audit (see util/check.h): the prefix-sum routing table is
  /// monotone and sized num_shards()+1 with per-shard spans matching the
  /// shards' tuple counts, Locate round-trips every boundary, and each
  /// shard's remap sends every live local code to a composite code below
  /// composite_dictionary_size() while NULL routes through untouched.
  /// O(Σ tuples·attrs) integer reads; JIM_CHECK-fails on any violation.
  void CheckInvariants() const;

 private:
  /// Shard-local shared code → composite code. Dense array when the shard's
  /// code space is dense (every store this repo writes), hash fallback so an
  /// exotic backend with sparse codes cannot blow up memory.
  struct CodeRemap {
    std::vector<uint32_t> dense;  // kNullCode marks unused slots
    std::unordered_map<uint32_t, uint32_t> sparse;
    bool use_dense = true;

    uint32_t Map(uint32_t local) const {
      if (use_dense) return dense[local];
      const auto it = sparse.find(local);
      return it->second;
    }
    size_t ApproxBytes() const {
      return dense.capacity() * sizeof(uint32_t) +
             sparse.size() * (2 * sizeof(uint32_t) + 2 * sizeof(void*));
    }
  };

  ShardedTupleStore() = default;

  std::string name_;
  std::vector<std::shared_ptr<const core::TupleStore>> shards_;
  std::vector<size_t> offsets_;
  std::vector<CodeRemap> remaps_;
  size_t composite_dict_size_ = 0;
};

}  // namespace jim::storage

#endif  // JIM_STORAGE_SHARDED_STORE_H_
