#include "storage/store_writer.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relational/dictionary.h"
#include "storage/env.h"
#include "storage/format.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::storage {

namespace {

/// Whether raw uint32 arrays already have the file's byte order — on such
/// hosts (everything the mapped reader supports) CODES payloads are
/// checksummed and written straight from the staged code vectors instead of
/// being copied into a second byte-identical string, halving writer memory.
constexpr bool kLittleEndianHost =
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
    true;
#else
    false;
#endif

struct SectionRecord {
  SectionId id;
  uint32_t column = kNoColumn;
  /// Metadata sections own their bytes; CODES sections borrow the staged
  /// code vector on little-endian hosts (`codes` set, `payload` empty).
  std::string payload;
  const std::vector<uint32_t>* codes = nullptr;

  size_t length() const {
    return codes != nullptr ? codes->size() * sizeof(uint32_t)
                            : payload.size();
  }
  const char* data() const {
    return codes != nullptr ? reinterpret_cast<const char*>(codes->data())
                            : payload.data();
  }
};

size_t AlignUp(size_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

std::string BuildSchemaPayload(const rel::Schema& schema) {
  std::string payload;
  AppendU32(payload, static_cast<uint32_t>(schema.num_attributes()));
  for (const rel::Attribute& attribute : schema.attributes()) {
    AppendU8(payload, static_cast<uint8_t>(attribute.type));
    AppendLengthPrefixed(payload, attribute.name);
    AppendLengthPrefixed(payload, attribute.qualifier);
  }
  return payload;
}

}  // namespace

util::Status WriteStore(const core::TupleStore& store, const std::string& path,
                        const StoreWriterOptions& options) {
  const size_t total = store.num_tuples();
  if (options.first_tuple > total) {
    return util::OutOfRangeError(util::StrFormat(
        "WriteStore: first_tuple %zu exceeds store size %zu",
        options.first_tuple, total));
  }
  const size_t rows =
      std::min(options.num_tuples, total - options.first_tuple);
  const size_t columns = store.num_attributes();
  if (columns == 0) {
    return util::InvalidArgumentError(
        "WriteStore: store has no attributes (nothing to persist)");
  }

  // One row-major scan assigns the file's shared codes (dense renumbering of
  // the source codes, first occurrence wins) and fills the columnar code
  // matrix; the first occurrence of each source code decodes its Value into
  // the owning column's dictionary page.
  std::unordered_map<uint32_t, uint32_t> shared_of_source;
  struct DictionaryPage {
    /// Entry count (local codes are dense 0..n-1 in append order).
    uint32_t num_entries = 0;
    /// Serialized entries: {shared_code, value record} each.
    std::string entries;
  };
  std::vector<DictionaryPage> dictionary_pages(columns);
  std::vector<std::vector<uint32_t>> code_arrays(columns);
  for (auto& codes : code_arrays) codes.reserve(rows);
  std::vector<uint32_t> row(columns);
  for (size_t r = 0; r < rows; ++r) {
    const size_t t = options.first_tuple + r;
    store.TupleCodes(t, row.data());
    for (size_t a = 0; a < columns; ++a) {
      const uint32_t source = row[a];
      if (source == rel::kNullCode) {
        code_arrays[a].push_back(rel::kNullCode);
        continue;
      }
      const auto [it, inserted] = shared_of_source.emplace(
          source, static_cast<uint32_t>(shared_of_source.size()));
      if (inserted) {
        DictionaryPage& page = dictionary_pages[a];
        AppendU32(page.entries, it->second);
        AppendValueRecord(page.entries, store.DecodeValue(t, a));
        ++page.num_entries;
      }
      code_arrays[a].push_back(it->second);
    }
  }
  const size_t shared_dict_size = shared_of_source.size();

  // Assemble the section list in a fixed order: name, schema, then per
  // column its dictionary page and code array (column locality on disk).
  std::vector<SectionRecord> sections;
  {
    SectionRecord name;
    name.id = SectionId::kName;
    AppendLengthPrefixed(name.payload,
                         options.name.empty() ? store.name() : options.name);
    sections.push_back(std::move(name));
  }
  sections.push_back(
      {SectionId::kSchema, kNoColumn, BuildSchemaPayload(store.schema())});
  for (size_t a = 0; a < columns; ++a) {
    SectionRecord dictionary;
    dictionary.id = SectionId::kDictionary;
    dictionary.column = static_cast<uint32_t>(a);
    AppendU32(dictionary.payload, dictionary_pages[a].num_entries);
    dictionary.payload += dictionary_pages[a].entries;
    sections.push_back(std::move(dictionary));

    SectionRecord codes;
    codes.id = SectionId::kCodes;
    codes.column = static_cast<uint32_t>(a);
    if (kLittleEndianHost) {
      codes.codes = &code_arrays[a];
    } else {
      codes.payload.reserve(code_arrays[a].size() * sizeof(uint32_t));
      for (const uint32_t code : code_arrays[a]) {
        AppendU32(codes.payload, code);
      }
    }
    sections.push_back(std::move(codes));
  }

  // Lay the sections out (8-byte aligned) and compute the total size, then
  // emit header + section table + zero-padded payloads.
  const size_t table_end =
      kHeaderBytes + sections.size() * kSectionEntryBytes;
  std::vector<size_t> offsets(sections.size());
  size_t cursor = AlignUp(table_end);
  for (size_t i = 0; i < sections.size(); ++i) {
    offsets[i] = cursor;
    cursor = AlignUp(cursor + sections[i].length());
  }
  const size_t file_bytes = cursor;

  std::string header;
  header.reserve(kHeaderBytes);
  AppendU32(header, kMagic);
  AppendU32(header, kFormatVersion);
  AppendU64(header, rows);
  AppendU32(header, static_cast<uint32_t>(columns));
  AppendU32(header, static_cast<uint32_t>(sections.size()));
  AppendU64(header, shared_dict_size);
  AppendU64(header, file_bytes);
  AppendU64(header, 0);  // reserved
  JIM_CHECK_EQ(header.size(), kHeaderBytes);

  std::string table;
  table.reserve(sections.size() * kSectionEntryBytes);
  for (size_t i = 0; i < sections.size(); ++i) {
    AppendU32(table, static_cast<uint32_t>(sections[i].id));
    AppendU32(table, sections[i].column);
    AppendU64(table, offsets[i]);
    AppendU64(table, sections[i].length());
    AppendU64(table, Fnv1a64(sections[i].data(), sections[i].length()));
  }

  Env& env = options.env != nullptr ? *options.env : *DefaultEnv();
  // The staged bytes are reusable, so a transient I/O failure (classified
  // kUnavailable by the env) retries the whole atomic-persist sequence
  // after a backoff — each attempt is all-or-nothing, so a retry can never
  // observe a half-written target.
  return RetryWithBackoff(env, options.retry, [&] {
    return WriteFileAtomicallyWith(env, path, [&](WritableFile& out) {
      RETURN_IF_ERROR(out.Append(header));
      RETURN_IF_ERROR(out.Append(table));
      size_t written = table_end;
      for (size_t i = 0; i < sections.size(); ++i) {
        if (written < offsets[i]) {
          RETURN_IF_ERROR(out.Append(std::string(offsets[i] - written, '\0')));
          written = offsets[i];
        }
        RETURN_IF_ERROR(out.Append(sections[i].data(), sections[i].length()));
        written += sections[i].length();
      }
      if (written < file_bytes) {
        RETURN_IF_ERROR(out.Append(std::string(file_bytes - written, '\0')));
      }
      return util::OkStatus();
    });
  });
}

}  // namespace jim::storage
