#ifndef JIM_STORAGE_METRICS_ENV_H_
#define JIM_STORAGE_METRICS_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"

namespace jim::storage {

/// Env decorator that counts every operation and byte crossing the seam,
/// then forwards to the wrapped backend unchanged. Two sinks:
///   - a local always-on atomic tally (`counts()`), cheap enough to leave
///     permanently attached in tests — this is what gives fault-injection
///     suites exact retry/attempt assertions;
///   - the process-wide obs registry ("storage.*" counters), mirrored only
///     while obs::MetricsEnabled(), so `jim_cli --metrics-out` snapshots
///     include the storage tier.
/// Composes freely: MetricsEnv(&fault_env) counts each *attempted* op,
/// including the ones the fault schedule fails, and counts the backoff
/// sleeps RetryWithBackoff takes between attempts — retries become an
/// observable number instead of an article of faith. Thread-safe to the
/// same degree as the wrapped Env (the tallies themselves are atomic).
class MetricsEnv final : public Env {
 public:
  /// Plain-value snapshot of the local tally (see counts()).
  struct Counts {
    uint64_t creates = 0;       ///< NewWritableFile calls.
    uint64_t appends = 0;       ///< WritableFile::Append calls.
    uint64_t append_bytes = 0;  ///< Bytes passed to Append.
    uint64_t fsyncs = 0;        ///< WritableFile::Sync calls.
    uint64_t closes = 0;        ///< WritableFile::Close calls.
    uint64_t reads = 0;         ///< ReadFileToString calls.
    uint64_t read_bytes = 0;    ///< Bytes returned by successful reads.
    uint64_t mmaps = 0;         ///< MapReadOnly calls.
    uint64_t mmap_bytes = 0;    ///< Bytes in successfully mapped regions.
    uint64_t stats = 0;         ///< FileSize calls.
    uint64_t renames = 0;       ///< RenameReplacing calls.
    uint64_t dir_syncs = 0;     ///< SyncDirectory calls.
    uint64_t lists = 0;         ///< ListDirectory calls.
    uint64_t removes = 0;       ///< RemoveFile calls.
    uint64_t mkdirs = 0;        ///< CreateDirectories calls.
    uint64_t sleeps = 0;        ///< SleepForMicros calls == retries taken.
    uint64_t micros_slept = 0;  ///< Total backoff requested.
    uint64_t failures = 0;      ///< Ops that returned a non-OK Status.

    /// Total operations counted (bytes/micros tallies excluded).
    uint64_t ops() const {
      return creates + appends + fsyncs + closes + reads + mmaps + stats +
             renames + dir_syncs + lists + removes + mkdirs + sleeps;
    }
  };

  /// Wraps `base`; nullptr wraps the process-wide DefaultEnv().
  explicit MetricsEnv(Env* base = nullptr);

  Counts counts() const;
  void ResetCounts();

  util::StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  util::StatusOr<std::string> ReadFileToString(
      const std::string& path) override;
  util::StatusOr<std::unique_ptr<ReadRegion>> MapReadOnly(
      const std::string& path) override;
  util::StatusOr<uint64_t> FileSize(const std::string& path) override;
  util::Status RenameReplacing(const std::string& from,
                               const std::string& to) override;
  util::Status SyncDirectory(const std::string& dir) override;
  util::StatusOr<std::vector<std::string>> ListDirectory(
      const std::string& dir) override;
  util::Status RemoveFile(const std::string& path) override;
  util::Status CreateDirectories(const std::string& dir) override;
  void SleepForMicros(uint64_t micros) override;

 private:
  friend class MetricsWritableFile;

  struct AtomicCounts {
    std::atomic<uint64_t> creates{0};
    std::atomic<uint64_t> appends{0};
    std::atomic<uint64_t> append_bytes{0};
    std::atomic<uint64_t> fsyncs{0};
    std::atomic<uint64_t> closes{0};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> read_bytes{0};
    std::atomic<uint64_t> mmaps{0};
    std::atomic<uint64_t> mmap_bytes{0};
    std::atomic<uint64_t> stats{0};
    std::atomic<uint64_t> renames{0};
    std::atomic<uint64_t> dir_syncs{0};
    std::atomic<uint64_t> lists{0};
    std::atomic<uint64_t> removes{0};
    std::atomic<uint64_t> mkdirs{0};
    std::atomic<uint64_t> sleeps{0};
    std::atomic<uint64_t> micros_slept{0};
    std::atomic<uint64_t> failures{0};
  };

  void CountFailure(const util::Status& status);

  Env* base_;
  AtomicCounts counts_;
};

}  // namespace jim::storage

#endif  // JIM_STORAGE_METRICS_ENV_H_
