#include "storage/mapped_store.h"

#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "relational/dictionary.h"
#include "storage/env.h"
#include "storage/format.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::storage {

namespace {

util::Status Corrupt(const std::string& path, const std::string& detail) {
  return util::InvalidArgumentError(
      util::StrFormat("JIMC %s: %s", path.c_str(), detail.c_str()));
}

struct SectionEntry {
  uint32_t id = 0;
  uint32_t column = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
};

}  // namespace

util::StatusOr<std::shared_ptr<const MappedTupleStore>> MappedTupleStore::Open(
    const std::string& path, Env* env) {
  OpenOptions options;
  options.env = env;
  return Open(path, options);
}

util::StatusOr<std::shared_ptr<const MappedTupleStore>> MappedTupleStore::Open(
    const std::string& path, const OpenOptions& options) {
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__)
  return util::UnimplementedError(
      "JIMC mapping requires a little-endian host");
#endif
  Env& fs = options.env != nullptr ? *options.env : *DefaultEnv();
  // Private ctor, so no make_shared; the aliasing around mutable Parse state
  // stays local to Open.
  std::shared_ptr<MappedTupleStore> store(new MappedTupleStore());
  store->path_ = path;
  auto mapped = fs.MapReadOnly(path);
  if (mapped.ok()) {
    store->region_ = std::move(mapped).value();
  } else if (mapped.status().code() == util::StatusCode::kNotFound ||
             mapped.status().code() == util::StatusCode::kInvalidArgument) {
    // A missing file or an unmappable-because-empty one is a verdict on the
    // input, not on the environment — no fallback can change it.
    return mapped.status();
  } else {
    // Graceful degradation: a refused or failed mapping (no mmap on this
    // host, fd pressure, injected refusal) downgrades to a heap copy with
    // identical read semantics — slower start, same bytes, and Parse still
    // stands between the content and the engine.
    JIM_LOG(kWarning) << "mapping " << path << " failed ("
                      << mapped.status().message()
                      << "); degrading to heap read";
    auto contents = fs.ReadFileToString(path);
    if (!contents.ok()) return contents.status();
    store->region_ = NewHeapRegion(std::move(contents).value());
  }
  store->data_ = store->region_->data();
  store->size_ = store->region_->size();
  RETURN_IF_ERROR(store->Parse(options.trusted));
  return std::shared_ptr<const MappedTupleStore>(std::move(store));
}

util::Status MappedTupleStore::Parse(bool trusted) {
  if (size_ < kHeaderBytes) {
    return Corrupt(path_, util::StrFormat(
        "file of %zu bytes is smaller than the %zu-byte header", size_,
        kHeaderBytes));
  }
  ByteReader header(data_, kHeaderBytes, "header");
  ASSIGN_OR_RETURN(const uint32_t magic, header.ReadU32());
  if (magic != kMagic) {
    return Corrupt(path_, util::StrFormat(
        "bad magic 0x%08x (not a JIMC file)", magic));
  }
  ASSIGN_OR_RETURN(const uint32_t version, header.ReadU32());
  if (version != kFormatVersion) {
    return Corrupt(path_, util::StrFormat(
        "unsupported format version %u (this build reads version %u)",
        version, kFormatVersion));
  }
  ASSIGN_OR_RETURN(const uint64_t num_tuples, header.ReadU64());
  ASSIGN_OR_RETURN(const uint32_t num_attributes, header.ReadU32());
  ASSIGN_OR_RETURN(const uint32_t num_sections, header.ReadU32());
  ASSIGN_OR_RETURN(const uint64_t dict_size, header.ReadU64());
  ASSIGN_OR_RETURN(const uint64_t file_bytes, header.ReadU64());
  if (file_bytes != size_) {
    return Corrupt(path_, util::StrFormat(
        "header claims %llu bytes but the file has %zu (truncated or "
        "over-long)", static_cast<unsigned long long>(file_bytes), size_));
  }
  if (num_attributes == 0) {
    return Corrupt(path_, "zero attributes");
  }
  if (num_sections != 2 + 2 * static_cast<uint64_t>(num_attributes)) {
    return Corrupt(path_, util::StrFormat(
        "expected %llu sections for %u attributes, header claims %u",
        2 + 2 * static_cast<unsigned long long>(num_attributes),
        num_attributes, num_sections));
  }
  if ((size_ - kHeaderBytes) / kSectionEntryBytes < num_sections) {
    return Corrupt(path_, "section table extends past end of file");
  }
  if (num_tuples > size_ / sizeof(uint32_t)) {
    return Corrupt(path_, util::StrFormat(
        "tuple count %llu cannot fit in a %zu-byte file",
        static_cast<unsigned long long>(num_tuples), size_));
  }
  if (dict_size > size_) {
    return Corrupt(path_, "shared dictionary size exceeds file size");
  }
  num_tuples_ = static_cast<size_t>(num_tuples);

  // Section table: bounds and checksums first, so every later parse touches
  // only verified bytes.
  std::vector<SectionEntry> sections(num_sections);
  ByteReader table(data_ + kHeaderBytes, num_sections * kSectionEntryBytes,
                   "section table");
  for (SectionEntry& section : sections) {
    ASSIGN_OR_RETURN(section.id, table.ReadU32());
    ASSIGN_OR_RETURN(section.column, table.ReadU32());
    ASSIGN_OR_RETURN(section.offset, table.ReadU64());
    ASSIGN_OR_RETURN(section.length, table.ReadU64());
    ASSIGN_OR_RETURN(section.checksum, table.ReadU64());
    if (section.offset > size_ || section.length > size_ - section.offset) {
      return Corrupt(path_, util::StrFormat(
          "section id=%u column=%u [%llu, +%llu) falls outside the %zu-byte "
          "file", section.id, section.column,
          static_cast<unsigned long long>(section.offset),
          static_cast<unsigned long long>(section.length), size_));
    }
    // Trusted reopen skips the checksum pass — the O(file) sequential read —
    // but never the bounds checks above.
    if (trusted) continue;
    const uint64_t actual =
        Fnv1a64(data_ + section.offset, static_cast<size_t>(section.length));
    if (actual != section.checksum) {
      return Corrupt(path_, util::StrFormat(
          "checksum mismatch in section id=%u column=%u (stored "
          "%016llx, computed %016llx)", section.id, section.column,
          static_cast<unsigned long long>(section.checksum),
          static_cast<unsigned long long>(actual)));
    }
  }

  // Locate the singleton name/schema sections and the per-column pair.
  const SectionEntry* name_section = nullptr;
  const SectionEntry* schema_section = nullptr;
  std::vector<const SectionEntry*> dict_sections(num_attributes, nullptr);
  std::vector<const SectionEntry*> code_sections(num_attributes, nullptr);
  for (const SectionEntry& section : sections) {
    switch (static_cast<SectionId>(section.id)) {
      case SectionId::kName:
        if (name_section != nullptr) return Corrupt(path_, "duplicate name section");
        name_section = &section;
        continue;
      case SectionId::kSchema:
        if (schema_section != nullptr) {
          return Corrupt(path_, "duplicate schema section");
        }
        schema_section = &section;
        continue;
      case SectionId::kDictionary:
      case SectionId::kCodes: {
        if (section.column >= num_attributes) {
          return Corrupt(path_, util::StrFormat(
              "section id=%u names column %u of %u", section.id,
              section.column, num_attributes));
        }
        auto& slot = static_cast<SectionId>(section.id) == SectionId::kDictionary
                         ? dict_sections[section.column]
                         : code_sections[section.column];
        if (slot != nullptr) {
          return Corrupt(path_, util::StrFormat(
              "duplicate section id=%u for column %u", section.id,
              section.column));
        }
        slot = &section;
        continue;
      }
    }
    return Corrupt(path_, util::StrFormat("unknown section id %u", section.id));
  }
  if (name_section == nullptr) return Corrupt(path_, "missing name section");
  if (schema_section == nullptr) {
    return Corrupt(path_, "missing schema section");
  }
  for (uint32_t a = 0; a < num_attributes; ++a) {
    if (dict_sections[a] == nullptr || code_sections[a] == nullptr) {
      return Corrupt(path_, util::StrFormat(
          "column %u is missing its dictionary or code section", a));
    }
  }

  {
    ByteReader reader(data_ + name_section->offset,
                      static_cast<size_t>(name_section->length),
                      "name section");
    ASSIGN_OR_RETURN(name_, reader.ReadLengthPrefixed());
  }

  {
    ByteReader reader(data_ + schema_section->offset,
                      static_cast<size_t>(schema_section->length),
                      "schema section");
    ASSIGN_OR_RETURN(const uint32_t count, reader.ReadU32());
    if (count != num_attributes) {
      return Corrupt(path_, util::StrFormat(
          "schema lists %u attributes, header claims %u", count,
          num_attributes));
    }
    for (uint32_t a = 0; a < count; ++a) {
      ASSIGN_OR_RETURN(const uint8_t type, reader.ReadU8());
      if (type > static_cast<uint8_t>(rel::ValueType::kString)) {
        return Corrupt(path_, util::StrFormat(
            "attribute %u has unknown type tag %u", a, unsigned{type}));
      }
      rel::Attribute attribute;
      attribute.type = static_cast<rel::ValueType>(type);
      ASSIGN_OR_RETURN(attribute.name, reader.ReadLengthPrefixed());
      ASSIGN_OR_RETURN(attribute.qualifier, reader.ReadLengthPrefixed());
      schema_.AddAttribute(std::move(attribute));
    }
  }

  // The header is the one region no checksum covers, so bound the
  // shared-dictionary size against the pages that would have to define it
  // *before* sizing the offset table: every defined code costs at least 9
  // payload bytes (shared u32 + tag + the smallest record payload), so a
  // crafted dict_size cannot force an allocation bigger than the
  // dictionary sections could ever justify.
  uint64_t dictionary_bytes = 0;
  for (uint32_t a = 0; a < num_attributes; ++a) {
    dictionary_bytes += dict_sections[a]->length;
  }
  if (dict_size > dictionary_bytes / 9) {
    return Corrupt(path_, util::StrFormat(
        "shared dictionary claims %llu entries, more than %llu bytes of "
        "dictionary pages could define",
        static_cast<unsigned long long>(dict_size),
        static_cast<unsigned long long>(dictionary_bytes)));
  }

  // Dictionary pages: every entry remaps a page-local code to a shared code;
  // recording each record's offset is all the index lazy decode needs.
  value_offsets_.assign(static_cast<size_t>(dict_size),
                        std::numeric_limits<uint64_t>::max());
  for (uint32_t a = 0; a < num_attributes; ++a) {
    const SectionEntry& section = *dict_sections[a];
    const std::string context = util::StrFormat("dictionary page %u", a);
    ByteReader reader(data_ + section.offset,
                      static_cast<size_t>(section.length), context);
    ASSIGN_OR_RETURN(const uint32_t entries, reader.ReadU32());
    for (uint32_t e = 0; e < entries; ++e) {
      ASSIGN_OR_RETURN(const uint32_t shared, reader.ReadU32());
      if (shared >= dict_size) {
        return Corrupt(path_, util::StrFormat(
            "dictionary page %u entry %u remaps to shared code %u, but the "
            "shared dictionary has %llu entries", a, e, shared,
            static_cast<unsigned long long>(dict_size)));
      }
      const uint64_t record_offset = section.offset + reader.position();
      // Full structural parse now, so decode-time reads of the same record
      // cannot fail later.
      const auto record = reader.ReadValueRecord();
      if (!record.ok()) return record.status();
      if (value_offsets_[shared] == std::numeric_limits<uint64_t>::max()) {
        value_offsets_[shared] = record_offset;
      }
    }
    if (reader.remaining() != 0) {
      return Corrupt(path_, util::StrFormat(
          "dictionary page %u has %zu trailing bytes", a,
          reader.remaining()));
    }
  }
  for (size_t code = 0; code < value_offsets_.size(); ++code) {
    if (value_offsets_[code] == std::numeric_limits<uint64_t>::max()) {
      return Corrupt(path_, util::StrFormat(
          "shared code %zu is never defined by any dictionary page", code));
    }
  }

  // Code arrays: alignment, exact length, and every code in range — after
  // this loop, serving codes is a bare load and decode a bare table index.
  column_codes_.resize(num_attributes);
  for (uint32_t a = 0; a < num_attributes; ++a) {
    const SectionEntry& section = *code_sections[a];
    if (section.offset % alignof(uint32_t) != 0) {
      return Corrupt(path_, util::StrFormat(
          "code array %u is misaligned (offset %llu)", a,
          static_cast<unsigned long long>(section.offset)));
    }
    if (section.length != num_tuples_ * sizeof(uint32_t)) {
      return Corrupt(path_, util::StrFormat(
          "code array %u holds %llu bytes, expected %zu for %zu tuples", a,
          static_cast<unsigned long long>(section.length),
          num_tuples_ * sizeof(uint32_t), num_tuples_));
    }
    const uint32_t* codes =
        reinterpret_cast<const uint32_t*>(data_ + section.offset);
    // The O(N·n) range scan is the other cost trusted reopen trades away; a
    // code it would have caught trips DecodeValue's JIM_CHECK instead.
    if (!trusted) {
      for (size_t t = 0; t < num_tuples_; ++t) {
        if (codes[t] >= dict_size && codes[t] != rel::kNullCode) {
          return Corrupt(path_, util::StrFormat(
              "code array %u tuple %zu holds code %u outside the shared "
              "dictionary of %llu entries", a, t, codes[t],
              static_cast<unsigned long long>(dict_size)));
        }
      }
    }
    column_codes_[a] = codes;
  }
  return util::OkStatus();
}

rel::Value MappedTupleStore::DecodeValue(size_t t, size_t a) const {
  const uint32_t code = column_codes_[a][t];
  if (code == rel::kNullCode) return rel::Value::Null();
  JIM_CHECK_LT(code, value_offsets_.size());
  const uint64_t offset = value_offsets_[code];
  ByteReader reader(data_ + offset, size_ - static_cast<size_t>(offset),
                    "value record");
  auto value = reader.ReadValueRecord();
  // The record was structurally validated at Open; a failure here would be a
  // programming error, not bad input.
  JIM_CHECK(value.ok()) << value.status();
  return *std::move(value);
}

void MappedTupleStore::CheckInvariants() const {
  JIM_CHECK(data_ != nullptr);
  JIM_CHECK_GE(size_, kHeaderBytes);
  JIM_CHECK_EQ(column_codes_.size(), schema_.num_attributes());
  // Every dictionary offset points at a record strictly inside the file and
  // past the header (no value record can live in the header region).
  for (size_t code = 0; code < value_offsets_.size(); ++code) {
    JIM_CHECK_GE(value_offsets_[code], kHeaderBytes)
        << "shared code " << code << " offset inside the header";
    JIM_CHECK_LT(value_offsets_[code], size_)
        << "shared code " << code << " offset past end of file";
  }
  // Every mapped code array lies inside the mapping and serves only shared
  // codes (or the NULL sentinel) — the precondition that makes DecodeValue's
  // bare table index safe.
  const uint8_t* const end = data_ + size_;
  for (size_t a = 0; a < column_codes_.size(); ++a) {
    const uint8_t* const first =
        reinterpret_cast<const uint8_t*>(column_codes_[a]);
    JIM_CHECK(first >= data_ &&
              first + num_tuples_ * sizeof(uint32_t) <= end)
        << "code array " << a << " escapes the mapping";
    for (size_t t = 0; t < num_tuples_; ++t) {
      const uint32_t c = column_codes_[a][t];
      JIM_CHECK(c == rel::kNullCode || c < value_offsets_.size())
          << "code array " << a << " tuple " << t
          << " holds out-of-range code " << c;
    }
  }
}

size_t MappedTupleStore::ApproxBytes() const {
  size_t bytes = value_offsets_.capacity() * sizeof(uint64_t) +
                 column_codes_.capacity() * sizeof(const uint32_t*) +
                 name_.size() + path_.size();
  for (const rel::Attribute& attribute : schema_.attributes()) {
    bytes += sizeof(rel::Attribute) + attribute.name.size() +
             attribute.qualifier.size();
  }
  return bytes;
}

util::StatusOr<std::shared_ptr<const core::TupleStore>> OpenStore(
    const std::string& path, Env* env) {
  ASSIGN_OR_RETURN(auto store, MappedTupleStore::Open(path, env));
  return std::shared_ptr<const core::TupleStore>(std::move(store));
}

util::StatusOr<std::shared_ptr<const core::TupleStore>> OpenStore(
    const std::string& path, const OpenOptions& options) {
  ASSIGN_OR_RETURN(auto store, MappedTupleStore::Open(path, options));
  return std::shared_ptr<const core::TupleStore>(std::move(store));
}

}  // namespace jim::storage
