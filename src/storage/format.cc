#include "storage/format.h"

#include <cstring>

#include "util/string_util.h"

namespace jim::storage {

uint64_t Fnv1a64(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

void AppendU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void AppendU32(std::string& out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void AppendU64(std::string& out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void AppendDouble(std::string& out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendLengthPrefixed(std::string& out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

void AppendValueRecord(std::string& out, const rel::Value& value) {
  switch (value.type()) {
    case rel::ValueType::kInt64:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kInt64));
      AppendU64(out, static_cast<uint64_t>(value.AsInt64()));
      return;
    case rel::ValueType::kDouble:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kDouble));
      AppendDouble(out, value.AsDouble());
      return;
    case rel::ValueType::kString:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kString));
      AppendLengthPrefixed(out, value.AsString());
      return;
    case rel::ValueType::kNull:
      break;
  }
  // NULL cells are the kNullCode sentinel in the code arrays; they never
  // reach a dictionary page. Reaching here is a writer bug, not bad input.
  std::abort();
}

util::Status ByteReader::Truncated(const char* what, size_t need) {
  return util::InvalidArgumentError(util::StrFormat(
      "%s: truncated %s at offset %zu (need %zu bytes, have %zu)",
      context_.c_str(), what, pos_, need, remaining()));
}

util::StatusOr<uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) return Truncated("u8", 1);
  return data_[pos_++];
}

util::StatusOr<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) return Truncated("u32", 4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

util::StatusOr<uint64_t> ByteReader::ReadU64() {
  if (remaining() < 8) return Truncated("u64", 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

util::StatusOr<double> ByteReader::ReadDouble() {
  ASSIGN_OR_RETURN(const uint64_t bits, ReadU64());
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

util::StatusOr<std::string> ByteReader::ReadLengthPrefixed() {
  ASSIGN_OR_RETURN(const uint32_t length, ReadU32());
  if (remaining() < length) return Truncated("string payload", length);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), length);
  pos_ += length;
  return s;
}

util::StatusOr<rel::Value> ByteReader::ReadValueRecord() {
  ASSIGN_OR_RETURN(const uint8_t tag, ReadU8());
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kInt64: {
      ASSIGN_OR_RETURN(const uint64_t bits, ReadU64());
      return rel::Value(static_cast<int64_t>(bits));
    }
    case ValueTag::kDouble: {
      ASSIGN_OR_RETURN(const double v, ReadDouble());
      return rel::Value(v);
    }
    case ValueTag::kString: {
      ASSIGN_OR_RETURN(std::string s, ReadLengthPrefixed());
      return rel::Value(std::move(s));
    }
  }
  return util::InvalidArgumentError(util::StrFormat(
      "%s: unknown value tag %u at offset %zu", context_.c_str(),
      unsigned{tag}, pos_ - 1));
}

}  // namespace jim::storage
