#ifndef JIM_STORAGE_FORMAT_H_
#define JIM_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>

#include "relational/value.h"
#include "util/status.h"

namespace jim::storage {

/// The JIMC on-disk columnar tuple-store format, version 1.
///
/// A JIMC file is the persistent form of a core::TupleStore: everything the
/// engine needs to serve `code()` / `TupleCodes()` straight out of an mmap
/// and to decode `Value`s lazily, and nothing else. All integers are
/// little-endian regardless of host; doubles are their IEEE-754 bit pattern
/// (NaN payloads survive a round trip).
///
///   ┌──────────────────────────────────────────────────────────────┐
///   │ header (48 B): magic "JIMC", version, num_tuples,            │
///   │   num_attributes, num_sections, shared_dict_size, file_bytes │
///   ├──────────────────────────────────────────────────────────────┤
///   │ section table: num_sections × {id, column, offset, length,   │
///   │   checksum}  (offsets 8-byte aligned, FNV-1a 64 per section) │
///   ├──────────────────────────────────────────────────────────────┤
///   │ NAME    store name                                           │
///   │ SCHEMA  attributes: type, name, qualifier                    │
///   │ DICT a  per-column dictionary page, one per attribute:       │
///   │   entries in local-code order, each {shared_code (the remap  │
///   │   into the file's shared dictionary), value record}          │
///   │ CODES a per-column code array, one per attribute:            │
///   │   num_tuples × u32 *shared* codes (kNullCode for NULL)       │
///   └──────────────────────────────────────────────────────────────┘
///
/// Code arrays hold codes in the file's *shared* dictionary space — a dense
/// renumbering (first occurrence wins, row-major scan order) of the source
/// store's codes — so within one file, code equality across any two cells of
/// any two columns is exactly strict Value equality (NaN occurrences keep
/// their distinct codes; NULL is the kNullCode sentinel and never equal).
/// The per-column dictionary pages exist so a reader can decode lazily with
/// column locality, and their shared-code remap column is what lets
/// ShardedTupleStore splice several files' code spaces into one.
inline constexpr uint32_t kMagic = 0x434D494Au;  // "JIMC" little-endian
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderBytes = 48;
inline constexpr size_t kSectionEntryBytes = 32;
/// Section payload offsets are aligned to this (so u32 code arrays can be
/// served by pointer straight from the mapping).
inline constexpr size_t kSectionAlignment = 8;

/// Section ids. DICT/CODES sections additionally carry the column index;
/// the others use kNoColumn.
enum class SectionId : uint32_t {
  kName = 1,
  kSchema = 2,
  kDictionary = 3,
  kCodes = 4,
};
inline constexpr uint32_t kNoColumn = 0xFFFFFFFFu;

/// Value-record type tags (NULL never appears in a dictionary page).
enum class ValueTag : uint8_t { kInt64 = 1, kDouble = 2, kString = 3 };

/// FNV-1a 64-bit over `size` bytes — the per-section checksum.
///
/// Deliberately NOT delegated to util::Fnv1a64 (which today happens to be
/// byte-identical over uint8_t ranges): that one is a general-purpose
/// in-memory hash free to evolve, while this one is pinned by every JIMC
/// file ever written. Do not merge them.
uint64_t Fnv1a64(const void* data, size_t size);

// The atomic-persist recipe (WriteFileAtomicallyWith) and the fsync/rename
// primitives live behind the storage::Env seam (env.h) so fault-injection
// tests can interpose on every one of them.

/// Little-endian append helpers (host-endianness independent).
void AppendU8(std::string& out, uint8_t v);
void AppendU32(std::string& out, uint32_t v);
void AppendU64(std::string& out, uint64_t v);
void AppendDouble(std::string& out, double v);
void AppendLengthPrefixed(std::string& out, std::string_view s);
/// Serializes one non-NULL value record (ValueTag + payload).
void AppendValueRecord(std::string& out, const rel::Value& value);

/// Bounds-checked little-endian reader over a byte range. Every Read*
/// advances the cursor; failures report the reading context so corruption
/// errors name the section that tripped them.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  util::StatusOr<uint8_t> ReadU8();
  util::StatusOr<uint32_t> ReadU32();
  util::StatusOr<uint64_t> ReadU64();
  util::StatusOr<double> ReadDouble();
  /// u32 length + that many bytes.
  util::StatusOr<std::string> ReadLengthPrefixed();
  /// One value record (ValueTag + payload).
  util::StatusOr<rel::Value> ReadValueRecord();

 private:
  util::Status Truncated(const char* what, size_t need);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  std::string context_;
};

}  // namespace jim::storage

#endif  // JIM_STORAGE_FORMAT_H_
