#ifndef JIM_STORAGE_ENV_H_
#define JIM_STORAGE_ENV_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace jim::storage {

/// The storage tier's filesystem seam. Every byte the JIMC writer, the
/// mapped reader, and the catalog snapshot machinery move to or from disk
/// goes through one of these virtual calls — format.cc, store_writer.cc,
/// mapped_store.cc, and snapshot.cc contain no direct syscalls or stream
/// objects (tools/lint_determinism.py's raw-io rule enforces this). That
/// indirection is what makes the durability story *testable*: a
/// FaultInjectionEnv (fault_env.h) can fail the Nth operation, tear a
/// write at any byte boundary, refuse mmap, or cut the power and replay
/// only the durable prefix, while the default PosixEnv preserves the
/// original behavior byte-for-byte.
///
/// Every failure is a typed util::Status carrying errno/strerror detail.
/// The code tells the caller what to do about it:
///   kNotFound           the path does not exist
///   kUnavailable        transient (EINTR/EAGAIN/EBUSY/EMFILE/ENFILE) —
///                       RetryWithBackoff retries exactly this code
///   kResourceExhausted  out of space/quota (ENOSPC/EDQUOT) — not retried
///   kInvalidArgument    the file itself is unusable (e.g. empty where a
///                       mapping was requested)
///   kUnimplemented      the host lacks the primitive (e.g. no mmap)
///   kInternal           everything else, with the errno named

/// A sequential append-only file handle. Close() is idempotent; an
/// unclosed handle is closed (without syncing) on destruction.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual util::Status Append(const void* data, size_t size) = 0;
  util::Status Append(std::string_view data) {
    return Append(data.data(), data.size());
  }
  /// Flushes user-space buffers and fsyncs the file data to stable storage.
  virtual util::Status Sync() = 0;
  virtual util::Status Close() = 0;
  virtual const std::string& path() const = 0;
};

/// A whole-file read-only view: either a zero-copy mmap or a heap copy with
/// identical semantics (the graceful-degradation fallback). Unmapped/freed
/// on destruction.
class ReadRegion {
 public:
  virtual ~ReadRegion() = default;

  virtual const uint8_t* data() const = 0;
  virtual size_t size() const = 0;
  /// True for an actual mapping (shared page cache), false for a heap copy.
  virtual bool zero_copy() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// Creates (or truncates) `path` for sequential writing.
  virtual util::StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  /// Reads all of `path` into memory.
  virtual util::StatusOr<std::string> ReadFileToString(
      const std::string& path) = 0;
  /// Maps all of `path` read-only. kUnimplemented where the host has no
  /// mmap; kInvalidArgument for an empty file (nothing to map). Callers
  /// wanting graceful degradation fall back to ReadFileToString.
  virtual util::StatusOr<std::unique_ptr<ReadRegion>> MapReadOnly(
      const std::string& path) = 0;
  virtual util::StatusOr<uint64_t> FileSize(const std::string& path) = 0;
  /// Renames `from` over `to`, replacing an existing target (atomic on
  /// POSIX). Unlike the atomic-persist recipe below, no cleanup of `from`
  /// happens on failure.
  virtual util::Status RenameReplacing(const std::string& from,
                                       const std::string& to) = 0;
  /// fsyncs a directory entry so renames/creations/removals under it
  /// survive a power cut. No-op where unsupported.
  virtual util::Status SyncDirectory(const std::string& dir) = 0;
  virtual util::StatusOr<std::vector<std::string>> ListDirectory(
      const std::string& dir) = 0;
  virtual util::Status RemoveFile(const std::string& path) = 0;
  virtual util::Status CreateDirectories(const std::string& dir) = 0;
  /// The injectable clock behind RetryWithBackoff: PosixEnv sleeps,
  /// FaultInjectionEnv only records, so retry tests take no wall time.
  virtual void SleepForMicros(uint64_t micros) = 0;
};

/// The process-wide PosixEnv singleton (heap-reader semantics off-POSIX).
/// Every storage entry point taking `Env* env = nullptr` resolves nullptr
/// to this.
Env* DefaultEnv();

/// Wraps an in-memory file copy in the ReadRegion interface (zero_copy() ==
/// false) — the graceful-degradation fallback when MapReadOnly refuses.
std::unique_ptr<ReadRegion> NewHeapRegion(std::string contents);

/// `path` up to its last '/', or "." — the directory whose entry must be
/// fsync'd for `path`'s rename to be durable.
std::string ParentDirectory(const std::string& path);

/// Bounded retry for transient-classified I/O errors. `attempt` runs up to
/// `max_attempts` times; a kUnavailable result sleeps the current backoff
/// (growing by `backoff_multiplier` each round, through env.SleepForMicros)
/// and retries. Any other status — OK or a non-transient error — returns
/// immediately.
struct RetryPolicy {
  int max_attempts = 3;
  uint64_t initial_backoff_micros = 100;
  uint64_t backoff_multiplier = 8;
};

util::Status RetryWithBackoff(Env& env, const RetryPolicy& policy,
                              const std::function<util::Status()>& attempt);

/// The atomic-persist recipe, shared by StoreWriter and the manifest
/// writer so the crash-safety-critical sequencing lives in exactly one
/// place: `write` streams the bytes into `path`.tmp, which is then
/// fsync'd, closed, renamed over the target, and the parent directory
/// entry fsync'd — a crash never leaves a half-written or lost file under
/// the final name. Any failure (from `write` or the file) cleans the tmp
/// file up (best effort) and is returned.
util::Status WriteFileAtomicallyWith(
    Env& env, const std::string& path,
    const std::function<util::Status(WritableFile&)>& write);

/// Convenience wrapper for small fully-resident files (catalog manifests).
util::Status WriteFileAtomically(Env& env, const std::string& path,
                                 const std::string& contents);

}  // namespace jim::storage

#endif  // JIM_STORAGE_ENV_H_
