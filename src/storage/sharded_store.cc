#include "storage/sharded_store.h"

#include <algorithm>

#include "exec/thread_pool.h"
#include "relational/dictionary.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::storage {

namespace {

/// Distinct codes of one shard in first-occurrence scan order (row-major,
/// the same order any reader of the shard would discover them), each paired
/// with one decoded Value. Deterministic per shard, so the per-shard scans
/// can run concurrently while the composite dictionary is still built by a
/// serial in-order merge.
struct ShardDistinct {
  std::vector<uint32_t> codes;
  std::vector<rel::Value> values;
  uint32_t max_code = 0;
};

ShardDistinct ScanShard(const core::TupleStore& shard) {
  ShardDistinct distinct;
  std::unordered_map<uint32_t, uint32_t> seen;
  const size_t columns = shard.num_attributes();
  std::vector<uint32_t> row(columns);
  for (size_t t = 0; t < shard.num_tuples(); ++t) {
    shard.TupleCodes(t, row.data());
    for (size_t a = 0; a < columns; ++a) {
      const uint32_t code = row[a];
      if (code == rel::kNullCode) continue;
      if (seen.emplace(code, 0).second) {
        distinct.codes.push_back(code);
        distinct.values.push_back(shard.DecodeValue(t, a));
        distinct.max_code = std::max(distinct.max_code, code);
      }
    }
  }
  return distinct;
}

}  // namespace

util::StatusOr<std::shared_ptr<const ShardedTupleStore>>
ShardedTupleStore::Create(
    std::string name,
    std::vector<std::shared_ptr<const core::TupleStore>> shards,
    exec::ThreadPool* pool) {
  if (shards.empty()) {
    return util::InvalidArgumentError(
        "ShardedTupleStore needs at least one shard");
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    if (shards[s] == nullptr) {
      return util::InvalidArgumentError(
          util::StrFormat("ShardedTupleStore: shard %zu is null", s));
    }
    if (!(shards[s]->schema() == shards[0]->schema())) {
      return util::InvalidArgumentError(util::StrFormat(
          "ShardedTupleStore: shard %zu ('%s') disagrees with shard 0 "
          "('%s') on the schema", s, shards[s]->name().c_str(),
          shards[0]->name().c_str()));
    }
  }

  std::shared_ptr<ShardedTupleStore> store(new ShardedTupleStore());
  store->name_ = std::move(name);
  store->shards_ = std::move(shards);
  store->offsets_.reserve(store->shards_.size() + 1);
  store->offsets_.push_back(0);
  for (const auto& shard : store->shards_) {
    store->offsets_.push_back(store->offsets_.back() + shard->num_tuples());
  }

  // Phase 1 — per-shard distinct scan, embarrassingly parallel (each shard's
  // result depends only on that shard).
  std::vector<ShardDistinct> distinct(store->shards_.size());
  if (pool != nullptr && pool->threads() > 1 && store->shards_.size() > 1) {
    pool->ParallelFor(store->shards_.size(), [&](size_t s, size_t) {
      distinct[s] = ScanShard(*store->shards_[s]);
    });
  } else {
    for (size_t s = 0; s < store->shards_.size(); ++s) {
      distinct[s] = ScanShard(*store->shards_[s]);
    }
  }

  // Phase 2 — serial merge in shard order: composite codes are assigned by
  // first occurrence across (shard, scan order), so two shard codes collide
  // exactly when their Values are strictly equal (Dictionary::GetOrAdd mints
  // a fresh code per NaN, which is precisely NaN ≠ NaN).
  rel::Dictionary composite;
  store->remaps_.resize(store->shards_.size());
  for (size_t s = 0; s < store->shards_.size(); ++s) {
    const ShardDistinct& shard = distinct[s];
    CodeRemap& remap = store->remaps_[s];
    // Dense remap unless the shard's code space is pathologically sparse
    // (codes are dictionary-dense in every store this repo produces).
    const size_t dense_slots =
        shard.codes.empty() ? 0 : static_cast<size_t>(shard.max_code) + 1;
    remap.use_dense = dense_slots <= 4 * shard.codes.size() + 1024;
    if (remap.use_dense) {
      remap.dense.assign(dense_slots, rel::kNullCode);
    }
    for (size_t i = 0; i < shard.codes.size(); ++i) {
      const uint32_t composite_code = composite.GetOrAdd(shard.values[i]);
      if (remap.use_dense) {
        remap.dense[shard.codes[i]] = composite_code;
      } else {
        remap.sparse.emplace(shard.codes[i], composite_code);
      }
    }
  }
  store->composite_dict_size_ = composite.size();
  return std::shared_ptr<const ShardedTupleStore>(std::move(store));
}

std::pair<size_t, size_t> ShardedTupleStore::Locate(size_t t) const {
  JIM_CHECK_LT(t, num_tuples());
  // First shard whose end exceeds t (upper_bound over the cumulative
  // counts); empty shards are skipped naturally.
  const auto it = std::upper_bound(offsets_.begin() + 1, offsets_.end(), t);
  const size_t s = static_cast<size_t>(it - (offsets_.begin() + 1));
  return {s, t - offsets_[s]};
}

uint32_t ShardedTupleStore::code(size_t t, size_t a) const {
  const auto [s, local_t] = Locate(t);
  const uint32_t local = shards_[s]->code(local_t, a);
  return local == rel::kNullCode ? rel::kNullCode : remaps_[s].Map(local);
}

void ShardedTupleStore::TupleCodes(size_t t, uint32_t* out) const {
  const auto [s, local_t] = Locate(t);
  shards_[s]->TupleCodes(local_t, out);
  const CodeRemap& remap = remaps_[s];
  const size_t columns = num_attributes();
  for (size_t a = 0; a < columns; ++a) {
    if (out[a] != rel::kNullCode) out[a] = remap.Map(out[a]);
  }
}

rel::Value ShardedTupleStore::DecodeValue(size_t t, size_t a) const {
  const auto [s, local_t] = Locate(t);
  return shards_[s]->DecodeValue(local_t, a);
}

void ShardedTupleStore::CheckInvariants() const {
  // Prefix-sum routing table: one span per shard, monotone, anchored at 0.
  JIM_CHECK(!shards_.empty());
  JIM_CHECK_EQ(offsets_.size(), shards_.size() + 1);
  JIM_CHECK_EQ(offsets_.front(), size_t{0});
  JIM_CHECK_EQ(remaps_.size(), shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    JIM_CHECK(shards_[s] != nullptr);
    JIM_CHECK(shards_[s]->schema() == shards_[0]->schema())
        << "shard " << s << " schema drifted after composition";
    JIM_CHECK_EQ(offsets_[s + 1] - offsets_[s], shards_[s]->num_tuples())
        << "offset span of shard " << s << " disagrees with its tuple count";
    // Locate round-trips both span boundaries of every non-empty shard.
    if (shards_[s]->num_tuples() == 0) continue;
    const auto first = Locate(offsets_[s]);
    JIM_CHECK(first.first == s && first.second == 0)
        << "Locate misroutes the first tuple of shard " << s;
    const auto last = Locate(offsets_[s + 1] - 1);
    JIM_CHECK(last.first == s &&
              last.second == shards_[s]->num_tuples() - 1)
        << "Locate misroutes the last tuple of shard " << s;
  }
  // Remap discipline over every live cell: NULL routes through untouched,
  // and every non-NULL local code lands inside the composite dictionary.
  const size_t columns = num_attributes();
  std::vector<uint32_t> local_row(columns), composite_row(columns);
  for (size_t s = 0; s < shards_.size(); ++s) {
    const core::TupleStore& shard = *shards_[s];
    for (size_t local_t = 0; local_t < shard.num_tuples(); ++local_t) {
      shard.TupleCodes(local_t, local_row.data());
      TupleCodes(offsets_[s] + local_t, composite_row.data());
      for (size_t a = 0; a < columns; ++a) {
        if (local_row[a] == rel::kNullCode) {
          JIM_CHECK_EQ(composite_row[a], rel::kNullCode)
              << "NULL not preserved at shard " << s << " cell (" << local_t
              << ", " << a << ")";
        } else {
          JIM_CHECK_LT(composite_row[a], composite_dict_size_)
              << "composite code out of dictionary range at shard " << s
              << " cell (" << local_t << ", " << a << ")";
          JIM_CHECK_EQ(composite_row[a], remaps_[s].Map(local_row[a]))
              << "code() and remap disagree at shard " << s << " cell ("
              << local_t << ", " << a << ")";
        }
      }
    }
  }
}

size_t ShardedTupleStore::ApproxBytes() const {
  size_t bytes = offsets_.capacity() * sizeof(size_t);
  for (const CodeRemap& remap : remaps_) bytes += remap.ApproxBytes();
  for (const auto& shard : shards_) bytes += shard->ApproxBytes();
  return bytes;
}

}  // namespace jim::storage
