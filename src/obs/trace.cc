#include "obs/trace.h"

#include <utility>

#include "util/json_writer.h"

namespace jim::obs {

void SessionTracer::BeginSession(SessionMeta meta) {
  meta_ = std::move(meta);
  steps_.clear();
  ended_ = false;
  identified_goal_ = false;
  interactions_ = 0;
  wasted_interactions_ = 0;
  total_seconds_ = 0.0;
}

void SessionTracer::RecordStep(const TraceStep& step) {
  steps_.push_back(step);
}

void SessionTracer::EndSession(bool identified_goal, size_t interactions,
                               size_t wasted_interactions,
                               double total_seconds) {
  ended_ = true;
  identified_goal_ = identified_goal;
  interactions_ = interactions;
  wasted_interactions_ = wasted_interactions;
  total_seconds_ = total_seconds;
}

void SessionTracer::Clear() {
  meta_ = SessionMeta{};
  steps_.clear();
  ended_ = false;
  identified_goal_ = false;
  interactions_ = 0;
  wasted_interactions_ = 0;
  total_seconds_ = 0.0;
}

void SessionTracer::AppendTo(util::JsonWriter& json) const {
  json.BeginObject();
  json.Key("session").BeginObject();
  json.KeyValue("strategy", meta_.strategy);
  json.KeyValue("mode", meta_.mode);
  json.KeyValue("instance", meta_.instance);
  json.KeyValue("num_tuples", meta_.num_tuples);
  json.KeyValue("num_classes", meta_.num_classes);
  json.EndObject();
  json.Key("steps").BeginArray();
  for (const TraceStep& step : steps_) {
    json.BeginObject();
    json.KeyValue("step", step.step);
    json.KeyValue("class", step.class_id);
    json.KeyValue("tuple", step.tuple_index);
    json.KeyValue("label", step.positive);
    json.KeyValue("accepted", step.accepted);
    json.KeyValue("pruned_classes", step.pruned_classes);
    json.KeyValue("pruned_tuples", step.pruned_tuples);
    json.KeyValue("worklist_before", step.worklist_before);
    json.KeyValue("worklist_after", step.worklist_after);
    json.KeyValue("simulate_label_calls", step.simulate_label_calls);
    json.KeyValue("micros", step.micros);
    json.EndObject();
  }
  json.EndArray();
  if (ended_) {
    json.Key("result").BeginObject();
    json.KeyValue("identified_goal", identified_goal_);
    json.KeyValue("interactions", interactions_);
    json.KeyValue("wasted_interactions", wasted_interactions_);
    json.KeyValue("total_seconds", total_seconds_);
    json.EndObject();
  }
  json.EndObject();
}

std::string SessionTracer::ToJson() const {
  util::JsonWriter json;
  AppendTo(json);
  return json.str();
}

}  // namespace jim::obs
