#ifndef JIM_OBS_METRICS_H_
#define JIM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jim::util {
class JsonWriter;
}  // namespace jim::util

namespace jim::obs {

/// Process-wide metrics switch. Off by default; resolved once from the
/// JIM_METRICS environment variable (any non-empty value other than "0"
/// enables), overridable at runtime via SetMetricsEnabled. Every
/// instrumentation macro guards on this, so the disabled-path cost of a
/// metric site is one relaxed atomic load and a branch.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace internal_metrics {

/// Counters shard their cells so concurrent hot paths don't bounce one
/// cache line between cores. 16 shards covers the pool sizes this repo
/// runs (ThreadPool caps out well below that in CI) without making every
/// Counter enormous.
inline constexpr size_t kShards = 16;

struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

/// Dense per-thread shard index: threads get 0,1,2,... in first-use order,
/// reduced mod kShards. Dense (not hashed from thread::id) so that a
/// single-threaded process always lands on shard 0 and snapshots stay
/// reproducible.
size_t ThisThreadShard();

}  // namespace internal_metrics

/// Monotone event count. Add() is one relaxed fetch_add on a thread-local
/// shard; Value() sums the shards in index order, which makes aggregation
/// deterministic: the total is an order-independent sum, identical for
/// identical event multisets regardless of which thread counted what.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[internal_metrics::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const;
  void Reset();

 private:
  friend class MetricsRegistry;
  Counter() = default;
  internal_metrics::ShardCell cells_[internal_metrics::kShards];
};

/// Last-write-wins level (thread counts, configured capacities). Not
/// sharded: gauges are set at configuration points, not on hot paths.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket power-of-two histogram. Bucket i holds values whose bit
/// width is i (bucket 0: value 0; bucket i: [2^(i-1), 2^i - 1]), clamped to
/// the last bucket, so 40 buckets span microsecond latencies up to ~6 days.
/// Observe() is three relaxed adds on a thread-local shard; Snap() sums
/// shards in index order. Count, sum, and buckets of *value* histograms
/// (sizes, item counts) are therefore deterministic across runs and thread
/// counts; histograms fed wall-clock durations (named "*_micros" by
/// convention) have run-dependent sums/buckets but deterministic counts.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void Observe(uint64_t value) {
    Shard& shard = shards_[internal_metrics::ThisThreadShard()];
    shard.count.fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kNumBuckets> buckets{};
  };
  Snapshot Snap() const;
  void Reset();

  static size_t BucketIndex(uint64_t value);
  /// Largest value bucket i admits (inclusive); 2^i - 1 except the last
  /// bucket, which is unbounded and reports UINT64_MAX.
  static uint64_t BucketUpperBound(size_t bucket);

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  struct alignas(64) Shard {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kNumBuckets]{};
  };
  Shard shards_[internal_metrics::kShards];
};

/// Aggregated point-in-time view of every registered metric, sorted by
/// name. Taken while writers are quiescent it is exact and deterministic;
/// taken mid-flight each cell is individually atomic but the whole is a
/// best-effort cut.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    /// (inclusive upper bound, count) for non-empty buckets only.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramData> histograms;

  /// Appends this snapshot as one JSON object value:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  /// buckets:[[le,count],...]}}}. Keys are sorted, output is byte-stable
  /// for equal snapshots.
  void AppendTo(util::JsonWriter& json) const;
  std::string ToJson() const;
};

/// Process-wide registry. Metric objects are owned by the registry, never
/// deleted, and address-stable for the life of the process, so call sites
/// may cache `static Counter& c = ...Instance().GetCounter(name)` once and
/// bump it lock-free forever after. ResetForTesting zeroes values in place
/// without invalidating those cached references.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  void ResetForTesting();

  /// Convenience: current value of the named counter (registering it if
  /// it does not exist yet). For hot paths prefer caching the Counter&.
  uint64_t CounterValue(std::string_view name) {
    return GetCounter(name).Value();
  }

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // std::map: sorted iteration gives deterministic snapshots; node-based
  // storage plus unique_ptr keeps metric addresses stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace jim::obs

#define JIM_OBS_CONCAT_INNER(a, b) a##b
#define JIM_OBS_CONCAT(a, b) JIM_OBS_CONCAT_INNER(a, b)

/// Bumps counter `name` by `n` when metrics are enabled. The registry
/// lookup happens once per call site (function-local static); the steady
/// state is one enabled-check branch plus one relaxed fetch_add.
#define JIM_COUNT_N(name, n)                                          \
  do {                                                                \
    if (::jim::obs::MetricsEnabled()) {                               \
      static ::jim::obs::Counter& jim_obs_counter =                   \
          ::jim::obs::MetricsRegistry::Instance().GetCounter(name);   \
      jim_obs_counter.Add(n);                                         \
    }                                                                 \
  } while (0)
#define JIM_COUNT(name) JIM_COUNT_N(name, 1)

/// Records `value` into histogram `name` when metrics are enabled.
#define JIM_OBSERVE(name, value)                                      \
  do {                                                                \
    if (::jim::obs::MetricsEnabled()) {                               \
      static ::jim::obs::Histogram& jim_obs_hist =                    \
          ::jim::obs::MetricsRegistry::Instance().GetHistogram(name); \
      jim_obs_hist.Observe(value);                                    \
    }                                                                 \
  } while (0)

/// Sets gauge `name` to `value` when metrics are enabled.
#define JIM_GAUGE_SET(name, value)                                    \
  do {                                                                \
    if (::jim::obs::MetricsEnabled()) {                               \
      static ::jim::obs::Gauge& jim_obs_gauge =                       \
          ::jim::obs::MetricsRegistry::Instance().GetGauge(name);     \
      jim_obs_gauge.Set(value);                                       \
    }                                                                 \
  } while (0)

#endif  // JIM_OBS_METRICS_H_
