#ifndef JIM_OBS_TRACE_H_
#define JIM_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace jim::util {
class JsonWriter;
}  // namespace jim::util

namespace jim::obs {

/// One typed event per session step: the question the strategy posed, the
/// label that came back, and what the engine did with it. Plain ints and
/// strings only — the tracer observes a session, it never reaches back
/// into core types.
struct TraceStep {
  size_t step = 0;          ///< 0-based interaction index.
  size_t class_id = 0;      ///< Equivalence class the question was drawn from.
  size_t tuple_index = 0;   ///< Representative tuple shown to the user.
  bool positive = false;    ///< The label received.
  bool accepted = false;    ///< False when the engine rejected a contradiction.
  size_t pruned_classes = 0;
  size_t pruned_tuples = 0;
  size_t worklist_before = 0;  ///< Informative classes before the label.
  size_t worklist_after = 0;   ///< Informative classes after propagation.
  /// SimulateLabelBoth evaluations spent choosing this question (counter
  /// delta; 0 when metrics are disabled or the strategy never simulates).
  uint64_t simulate_label_calls = 0;
  int64_t micros = 0;  ///< Wall time for the step (question + propagation).
};

/// Structured recorder for one inference session. The driver calls
/// BeginSession once, RecordStep per interaction, EndSession once;
/// ToJson() serializes the whole trace via util::JsonWriter. Recording is
/// append-only and allocation-amortized; a null tracer pointer anywhere in
/// the session plumbing means "don't trace" and costs one pointer test.
class SessionTracer {
 public:
  struct SessionMeta {
    std::string strategy;
    std::string mode;
    std::string instance;
    size_t num_tuples = 0;
    size_t num_classes = 0;
  };

  void BeginSession(SessionMeta meta);
  void RecordStep(const TraceStep& step);
  void EndSession(bool identified_goal, size_t interactions,
                  size_t wasted_interactions, double total_seconds);

  /// Drops all recorded state so the tracer can be reused for another
  /// session.
  void Clear();

  const SessionMeta& meta() const { return meta_; }
  const std::vector<TraceStep>& steps() const { return steps_; }
  bool ended() const { return ended_; }
  bool identified_goal() const { return identified_goal_; }
  size_t interactions() const { return interactions_; }
  size_t wasted_interactions() const { return wasted_interactions_; }
  double total_seconds() const { return total_seconds_; }

  /// Appends the trace as one JSON object value:
  /// {"session":{...meta...},"steps":[{...},...],"result":{...}}.
  void AppendTo(util::JsonWriter& json) const;
  std::string ToJson() const;

 private:
  SessionMeta meta_;
  std::vector<TraceStep> steps_;
  bool ended_ = false;
  bool identified_goal_ = false;
  size_t interactions_ = 0;
  size_t wasted_interactions_ = 0;
  double total_seconds_ = 0.0;
};

}  // namespace jim::obs

#endif  // JIM_OBS_TRACE_H_
