#include "obs/metrics.h"

#include <cstdlib>
#include <limits>

#include "util/json_writer.h"

namespace jim::obs {

namespace {

/// -1 = not yet resolved, 0 = off, 1 = on. Same contract as the invariant
/// audit flag in util/check.cc: relaxed ordering is enough because a stale
/// read can at worst drop (or record) one observation — metrics never feed
/// back into behavior.
std::atomic<int> g_metrics_state{-1};

bool ResolveDefault() {
  const char* env = std::getenv("JIM_METRICS");
  return env != nullptr && *env != '\0' && std::string_view(env) != "0";
}

}  // namespace

bool MetricsEnabled() {
  int state = g_metrics_state.load(std::memory_order_relaxed);
  if (state < 0) {
    state = ResolveDefault() ? 1 : 0;
    g_metrics_state.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

namespace internal_metrics {

size_t ThisThreadShard() {
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t shard =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal_metrics

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

size_t Histogram::BucketIndex(uint64_t value) {
  size_t width = 0;  // bit width of `value` (0 for 0)
  while (value != 0) {
    ++width;
    value >>= 1;
  }
  return width < kNumBuckets ? width : kNumBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(size_t bucket) {
  if (bucket + 1 >= kNumBuckets) {
    return std::numeric_limits<uint64_t>::max();
  }
  return (uint64_t{1} << bucket) - 1;
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  for (const auto& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kNumBuckets; ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram()))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot h = histogram->Snap();
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.count = h.count;
    data.sum = h.sum;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h.buckets[i] != 0) {
        data.buckets.emplace_back(Histogram::BucketUpperBound(i),
                                  h.buckets[i]);
      }
    }
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

void MetricsSnapshot::AppendTo(util::JsonWriter& json) const {
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) {
    json.KeyValue(name, value);
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) {
    json.KeyValue(name, value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& histogram : histograms) {
    json.Key(histogram.name).BeginObject();
    json.KeyValue("count", histogram.count);
    json.KeyValue("sum", histogram.sum);
    json.Key("buckets").BeginArray();
    for (const auto& [upper, count] : histogram.buckets) {
      json.BeginArray().Value(upper).Value(count).EndArray();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

std::string MetricsSnapshot::ToJson() const {
  util::JsonWriter json;
  AppendTo(json);
  return json.str();
}

}  // namespace jim::obs
