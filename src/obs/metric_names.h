#ifndef JIM_OBS_METRIC_NAMES_H_
#define JIM_OBS_METRIC_NAMES_H_

/// The instrumentation schema: every metric the library emits, in one
/// place, so call sites, tests, benches, and the CLI agree on spelling.
/// Naming conventions:
///   - dotted "<subsystem>.<noun>[.<qualifier>]" keys, sorted-stable in
///     snapshots;
///   - histograms fed wall-clock durations end in "_micros" — their
///     count is deterministic but sum/buckets vary run to run; every
///     other metric (counters, gauges, value histograms) is fully
///     deterministic for a deterministic workload at any thread count.

namespace jim::obs {

// --- core::InferenceEngine ----------------------------------------------
inline constexpr char kCounterEngineBuilds[] = "engine.builds";
inline constexpr char kCounterEngineClassesBuilt[] = "engine.classes_built";
inline constexpr char kCounterEngineLabelsAccepted[] =
    "engine.labels.accepted";
inline constexpr char kCounterEngineLabelsRejected[] =
    "engine.labels.rejected";
inline constexpr char kCounterEngineLabelsWasted[] = "engine.labels.wasted";
inline constexpr char kCounterEngineLabelsPositive[] =
    "engine.labels.positive";
inline constexpr char kCounterEngineLabelsNegative[] =
    "engine.labels.negative";
inline constexpr char kCounterEnginePropagateRuns[] =
    "engine.propagate.runs";
inline constexpr char kCounterEnginePrunedClasses[] =
    "engine.propagate.pruned_classes";
/// One Add per SimulateLabelBoth evaluation — the baseline any lookahead
/// cutoff optimization must beat (see ROADMAP direction 2).
inline constexpr char kCounterEngineSimulateLabelBoth[] =
    "engine.simulate_label_both";
/// Lookahead candidates whose simulation was skipped (or aborted mid-scan)
/// because their upper bound provably could not beat the best score already
/// computed — the work the cutoff saves. skip fraction =
/// cutoff_skips / (cutoff_skips + simulate_label_both).
inline constexpr char kCounterEngineCutoffSkips[] = "engine.cutoff_skips";
/// Classes woken (watch-list drained and fully retested) by a negative-label
/// propagation. The watch win is this number staying far below the worklist
/// size the pre-watch scan visited.
inline constexpr char kCounterEngineWatchWakes[] = "engine.watch_wakes";
/// Worklist classes whose antichain DominatedBy scan was skipped during a
/// positive-label propagation because their watched pair survived the
/// knowledge refresh and is covered by no antichain member.
inline constexpr char kCounterEngineWatchExemptions[] =
    "engine.watch_exemptions";
/// Informative-class worklist size observed after each propagation pass.
inline constexpr char kHistEngineWorklistSize[] = "engine.worklist_size";
inline constexpr char kHistEngineBuildMicros[] =
    "engine.build_classes_micros";

// --- exec::ThreadPool / BatchSessionRunner ------------------------------
inline constexpr char kCounterExecPoolsCreated[] = "exec.pools.created";
inline constexpr char kCounterExecWorkersSpawned[] =
    "exec.pools.workers_spawned";
inline constexpr char kCounterExecTasksSubmitted[] = "exec.tasks.submitted";
inline constexpr char kCounterExecParallelForCalls[] =
    "exec.parallel_for.calls";
inline constexpr char kCounterExecParallelForChunks[] =
    "exec.parallel_for.chunks";
/// Item count (n) per ParallelFor call — a value histogram, deterministic.
inline constexpr char kHistExecParallelForItems[] =
    "exec.parallel_for.items";
inline constexpr char kCounterExecBatchRuns[] = "exec.batch.runs";
inline constexpr char kCounterExecBatchSessions[] = "exec.batch.sessions";
inline constexpr char kHistExecSessionMicros[] = "exec.batch.session_micros";

// --- storage::MetricsEnv ------------------------------------------------
inline constexpr char kCounterStorageCreates[] = "storage.creates";
inline constexpr char kCounterStorageAppends[] = "storage.appends";
inline constexpr char kCounterStorageAppendBytes[] = "storage.append_bytes";
inline constexpr char kCounterStorageFsyncs[] = "storage.fsyncs";
inline constexpr char kCounterStorageCloses[] = "storage.closes";
inline constexpr char kCounterStorageReads[] = "storage.reads";
inline constexpr char kCounterStorageReadBytes[] = "storage.read_bytes";
inline constexpr char kCounterStorageMmaps[] = "storage.mmaps";
inline constexpr char kCounterStorageMmapBytes[] = "storage.mmap_bytes";
inline constexpr char kCounterStorageStats[] = "storage.stats";
inline constexpr char kCounterStorageRenames[] = "storage.renames";
inline constexpr char kCounterStorageDirSyncs[] = "storage.dir_syncs";
inline constexpr char kCounterStorageLists[] = "storage.lists";
inline constexpr char kCounterStorageRemoves[] = "storage.removes";
inline constexpr char kCounterStorageMkdirs[] = "storage.mkdirs";
/// Backoff sleeps — equal to the number of transient-error retries taken.
inline constexpr char kCounterStorageRetries[] = "storage.retries";
inline constexpr char kCounterStorageFailures[] = "storage.failures";

// --- serve::SessionManager / serve::Server ------------------------------
inline constexpr char kGaugeServeSessionsLive[] = "serve.sessions.live";
inline constexpr char kCounterServeSessionsCreated[] =
    "serve.sessions.created";
/// Sessions removed by an explicit `close` (or manager teardown of a
/// finished session) — the complement of `live` against created+recovered.
inline constexpr char kCounterServeSessionsEvicted[] =
    "serve.sessions.evicted";
/// Sessions rebuilt from checkpoints after a daemon restart.
inline constexpr char kCounterServeSessionsRecovered[] =
    "serve.sessions.recovered";
/// Typed RESOURCE_EXHAUSTED admission rejections (session cap or
/// per-session step cap).
inline constexpr char kCounterServeSessionsRejected[] =
    "serve.sessions.rejected";
inline constexpr char kCounterServeRequests[] = "serve.requests";
inline constexpr char kCounterServeRequestErrors[] = "serve.request_errors";
inline constexpr char kHistServeCreateMicros[] = "serve.create_micros";
inline constexpr char kHistServeSuggestMicros[] = "serve.suggest_micros";
inline constexpr char kHistServeLabelMicros[] = "serve.label_micros";
inline constexpr char kHistServeCheckpointMicros[] =
    "serve.checkpoint_micros";
inline constexpr char kHistServeRecoverMicros[] = "serve.recover_micros";

}  // namespace jim::obs

#endif  // JIM_OBS_METRIC_NAMES_H_
