#ifndef JIM_OBS_SPAN_H_
#define JIM_OBS_SPAN_H_

#include <cstdint>
#include <optional>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace jim::obs {

/// RAII timing span: elapsed wall time between Start() and scope exit lands
/// in a latency histogram as microseconds. Default-constructed spans are
/// disarmed and never touch the clock, which is how JIM_SPAN keeps the
/// metrics-off cost of a span site to a single branch — the Stopwatch (and
/// its steady_clock read) only exists once metrics are on.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ~ScopedSpan() {
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<uint64_t>(watch_->ElapsedMicros()));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Arms the span: time from this call to destruction is recorded in `h`.
  void Start(Histogram& h) {
    hist_ = &h;
    watch_.emplace();
  }

 private:
  Histogram* hist_ = nullptr;
  std::optional<util::Stopwatch> watch_;
};

}  // namespace jim::obs

/// Times the rest of the enclosing scope into latency histogram `name`
/// (e.g. JIM_SPAN("engine.lookahead")). Statement-shaped: use at block
/// scope, not as the body of an unbraced if/for. Disabled cost is one
/// branch; the histogram lookup is a per-site function-local static.
#define JIM_SPAN_INTERNAL(name, unique)                                  \
  ::jim::obs::ScopedSpan JIM_OBS_CONCAT(jim_obs_span_, unique);          \
  if (::jim::obs::MetricsEnabled()) {                                    \
    static ::jim::obs::Histogram& JIM_OBS_CONCAT(jim_obs_span_hist_,     \
                                                 unique) =               \
        ::jim::obs::MetricsRegistry::Instance().GetHistogram(name);      \
    JIM_OBS_CONCAT(jim_obs_span_, unique)                                \
        .Start(JIM_OBS_CONCAT(jim_obs_span_hist_, unique));              \
  }                                                                      \
  static_assert(true, "require a trailing semicolon")
#define JIM_SPAN(name) JIM_SPAN_INTERNAL(name, __COUNTER__)

#endif  // JIM_OBS_SPAN_H_
