#include "relational/relation.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace jim::rel {

size_t TupleHash(const Tuple& tuple) {
  size_t seed = 0x51ab5d1fba5c931dull;
  for (const Value& value : tuple) {
    util::HashCombine(seed, value.Hash());
  }
  return seed;
}

bool TupleEquals(const Tuple& a, const Tuple& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

int TupleCompare(const Tuple& a, const Tuple& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

util::Status Relation::AddRow(Tuple row) {
  if (row.size() != schema_.num_attributes()) {
    return util::InvalidArgumentError(util::StrFormat(
        "row arity %zu does not match schema arity %zu of relation '%s'",
        row.size(), schema_.num_attributes(), name_.c_str()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null() && row[i].type() != schema_.attribute(i).type) {
      return util::InvalidArgumentError(util::StrFormat(
          "value of type %s in column '%s' of type %s",
          std::string(ValueTypeToString(row[i].type())).c_str(),
          schema_.attribute(i).QualifiedName().c_str(),
          std::string(ValueTypeToString(schema_.attribute(i).type)).c_str()));
    }
  }
  rows_.push_back(std::move(row));
  return util::OkStatus();
}

void Relation::SortRows() {
  std::sort(rows_.begin(), rows_.end(), [](const Tuple& a, const Tuple& b) {
    return TupleCompare(a, b) < 0;
  });
}

std::string TupleRepresentationKey(const Tuple& tuple) {
  std::string key;
  for (const Value& value : tuple) {
    // Each field is length-prefixed so the key is unambiguous even when a
    // string payload contains the separator characters: concatenating the
    // keys of two tuples equals the key of the concatenated tuple, which is
    // what lets the factorized universal table dedup per source and still
    // match a whole-tuple dedup byte for byte.
    const std::string payload = value.ToString();
    key += static_cast<char>('0' + static_cast<int>(value.type()));
    key += std::to_string(payload.size());
    key.push_back(':');
    key += payload;
  }
  return key;
}

void Relation::DeduplicateRows() {
  // Representation-level equality: render values (NULL == NULL here) so that
  // dedup treats two all-NULL rows as duplicates.
  std::unordered_set<std::string> seen;
  std::vector<Tuple> kept;
  kept.reserve(rows_.size());
  for (Tuple& row : rows_) {
    if (seen.insert(TupleRepresentationKey(row)).second) {
      kept.push_back(std::move(row));
    }
  }
  rows_ = std::move(kept);
}

std::string Relation::ToString(size_t max_rows) const {
  util::TablePrinter printer(schema_.Names());
  const size_t limit = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < limit; ++r) {
    std::vector<std::string> cells;
    cells.reserve(rows_[r].size());
    for (const Value& value : rows_[r]) {
      cells.push_back(value.ToString());
    }
    printer.AddRow(std::move(cells));
  }
  std::string out = name_.empty() ? "" : (name_ + " " + schema_.ToString() + "\n");
  out += printer.ToString();
  if (limit < rows_.size()) {
    out += util::StrFormat("... (%zu more rows)\n", rows_.size() - limit);
  }
  return out;
}

}  // namespace jim::rel
