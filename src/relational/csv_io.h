#ifndef JIM_RELATIONAL_CSV_IO_H_
#define JIM_RELATIONAL_CSV_IO_H_

#include <string>
#include <string_view>

#include "relational/relation.h"
#include "util/status.h"

namespace jim::rel {

/// Builds a relation from CSV text. The first record is the header (attribute
/// names). Column types are inferred: a column where every non-empty field
/// parses as an integer is INT64; else if every non-empty field parses as a
/// number it is DOUBLE; otherwise STRING. Empty fields load as NULL.
util::StatusOr<Relation> RelationFromCsv(std::string_view name,
                                         std::string_view csv_content,
                                         char delim = ',');

/// Loads a relation from a CSV file; the relation name defaults to the file
/// basename without extension when `name` is empty.
util::StatusOr<Relation> LoadRelationFromCsvFile(const std::string& path,
                                                 std::string_view name = "",
                                                 char delim = ',');

/// Serializes the relation (header + rows). NULLs serialize as empty fields.
std::string RelationToCsv(const Relation& relation, char delim = ',');

/// Writes the relation to a file.
util::Status SaveRelationToCsvFile(const Relation& relation,
                                   const std::string& path, char delim = ',');

}  // namespace jim::rel

#endif  // JIM_RELATIONAL_CSV_IO_H_
