#ifndef JIM_RELATIONAL_CATALOG_H_
#define JIM_RELATIONAL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/status.h"

namespace jim::rel {

/// A named collection of relations — JIM's stand-in for a database. Supports
/// the demo's "varying number of involved relations": the universal-table
/// builder (src/query) pulls any subset of catalog relations into one
/// denormalized instance.
class Catalog {
 public:
  Catalog() = default;

  /// Registers `relation` under its name. Errors on duplicates.
  util::Status Add(Relation relation);

  /// Replaces or inserts.
  void AddOrReplace(Relation relation);

  util::StatusOr<const Relation*> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  util::Status Drop(const std::string& name);

  /// Names in lexicographic order.
  std::vector<std::string> Names() const;

  size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace jim::rel

#endif  // JIM_RELATIONAL_CATALOG_H_
