#ifndef JIM_RELATIONAL_CATALOG_H_
#define JIM_RELATIONAL_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "relational/dictionary.h"
#include "relational/relation.h"
#include "util/status.h"

namespace jim::rel {

/// A named collection of relations — JIM's stand-in for a database. Supports
/// the demo's "varying number of involved relations": the universal-table
/// builder (src/query) pulls any subset of catalog relations into one
/// denormalized instance.
///
/// Relations are immutable once registered and held behind shared_ptr, so
/// consumers (universal tables, tuple stores) can keep a relation alive past
/// the catalog's lifetime without copying its rows. Each relation's
/// dictionary-encoded mirror is built lazily, once, on first GetEncoded —
/// this is the "encode at catalog time" half of the columnar ingest path.
class Catalog {
 public:
  Catalog() = default;
  /// Copies share the (immutable) relations and whatever encodings the
  /// source had cached so far; the cache mutex itself is per-instance.
  Catalog(const Catalog& other);
  Catalog& operator=(const Catalog& other);

  /// Registers `relation` under its name. Errors on duplicates.
  util::Status Add(Relation relation);

  /// Replaces or inserts (invalidating any cached encoding of the name).
  /// Relations are immutable once registered, so replacing installs a *new*
  /// object: raw pointers from Get() for the replaced name dangle (take
  /// GetShared when the handle must outlive catalog mutations).
  void AddOrReplace(Relation relation);

  /// Borrowed pointer, valid until the name is Dropped or replaced.
  util::StatusOr<const Relation*> Get(const std::string& name) const;

  /// Shared handle to the relation (no row copy; safe to outlive *this).
  util::StatusOr<std::shared_ptr<const Relation>> GetShared(
      const std::string& name) const;

  /// The relation's columnar dictionary-encoded mirror, built on first use
  /// and cached (shared by every universal table it participates in). The
  /// cache fill is mutex-guarded, so any number of threads may build
  /// universal tables over one catalog concurrently — only catalog
  /// *mutations* (Add/Drop/AddOrReplace) require external synchronization,
  /// like any container.
  util::StatusOr<std::shared_ptr<const EncodedRelation>> GetEncoded(
      const std::string& name) const;

  bool Contains(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  util::Status Drop(const std::string& name);

  /// Names in lexicographic order.
  std::vector<std::string> Names() const;

  size_t size() const { return relations_.size(); }

 private:
  std::map<std::string, std::shared_ptr<const Relation>> relations_;
  /// Lazily built encodings; mutable because encoding is a cache fill, not
  /// an observable mutation. Guarded by encoded_mutex_ (GetEncoded may be
  /// called from concurrent universal-table builds).
  mutable std::mutex encoded_mutex_;
  mutable std::map<std::string, std::shared_ptr<const EncodedRelation>>
      encoded_;
};

}  // namespace jim::rel

#endif  // JIM_RELATIONAL_CATALOG_H_
