#ifndef JIM_RELATIONAL_DICTIONARY_H_
#define JIM_RELATIONAL_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "relational/relation.h"
#include "relational/value.h"

namespace jim::exec {
class ThreadPool;
}  // namespace jim::exec

namespace jim::rel {

/// Sentinel code marking NULL in an encoded column. NULL deliberately has no
/// dictionary entry: NULL ≠ NULL under SQL join semantics, so a shared code
/// would wrongly make two NULLs compare equal. Kernels that consume codes
/// must special-case this value (the partition kernels give each NULL its
/// own singleton block).
inline constexpr uint32_t kNullCode = 0xFFFFFFFFu;

/// A per-column value dictionary: distinct non-NULL `Value`s mapped to dense
/// `uint32_t` codes in order of first appearance. Code equality is exactly
/// strict `Value::Equals` equality (type-sensitive), so once two columns'
/// codes are translated into one shared dictionary, tuple-level equality
/// tests become integer compares — the basis of the columnar ingest path.
class Dictionary {
 public:
  Dictionary() = default;

  /// Code of `value`, inserting it if unseen. Requires a non-NULL value.
  /// Insertion order is deterministic: codes are dense and first-come.
  uint32_t GetOrAdd(const Value& value);

  /// Code of `value` if present (NULL never is).
  std::optional<uint32_t> Find(const Value& value) const;

  /// The value behind `code`. Requires code < size().
  const Value& value(uint32_t code) const { return values_[code]; }

  size_t size() const { return values_.size(); }

  /// Rough heap footprint (for the bench memory accounting).
  size_t ApproxBytes() const;

  /// Invariant audit (see util/check.h): codes are dense, no value is NULL,
  /// the code→value and value→code directions agree entry for entry, and
  /// NaN values (which never compare equal) stay out of the reverse map —
  /// one fresh code per occurrence. JIM_CHECK-fails on any violation.
  void CheckInvariants() const;

 private:
  std::unordered_map<Value, uint32_t, ValueHash> code_of_;
  std::vector<Value> values_;
};

/// One dictionary-encoded column: a code per row (kNullCode for NULL) plus
/// the dictionary that decodes them.
struct EncodedColumn {
  Dictionary dictionary;
  std::vector<uint32_t> codes;

  size_t num_rows() const { return codes.size(); }
  size_t num_distinct() const { return dictionary.size(); }
  /// The row's value; Value::Null() for the sentinel.
  Value Decode(size_t row) const {
    const uint32_t code = codes[row];
    return code == kNullCode ? Value::Null() : dictionary.value(code);
  }
  size_t ApproxBytes() const {
    return codes.capacity() * sizeof(uint32_t) + dictionary.ApproxBytes();
  }
};

/// Encodes one column of `relation`.
EncodedColumn EncodeColumn(const Relation& relation, size_t column);

/// Rows below this, parallel encoding falls back to the serial path (chunk
/// bookkeeping would cost more than the hashing it splits).
inline constexpr size_t kParallelIngestMinRows = 2048;

/// Parallel variant: ParallelFor chunks encode into per-chunk dictionaries,
/// then a serial in-chunk-order merge (MergeChunkDictionaries) renumbers
/// into the final first-occurrence code space and a second ParallelFor
/// rewrites the chunk-local codes. Codes and dictionary order are
/// bitwise-identical to the serial path at any thread count — including the
/// fresh-code-per-occurrence NaN discipline — because chunk boundaries
/// partition the row order and the merge walks chunks in that order.
/// nullptr / 1-thread pools and small columns take the serial path.
EncodedColumn EncodeColumn(const Relation& relation, size_t column,
                           exec::ThreadPool* pool);

/// Folds per-chunk dictionaries (chunk order = row order) into `target` by
/// first occurrence, returning for each chunk the local → merged code remap.
/// The deterministic-merge half of every parallel ingest path.
std::vector<std::vector<uint32_t>> MergeChunkDictionaries(
    const std::vector<Dictionary>& chunks, Dictionary& target);

/// The columnar, dictionary-encoded mirror of a Relation — built once at
/// relation load / catalog registration time (see Catalog::GetEncoded) and
/// shared by every universal table the relation participates in. Codes are
/// column-local; cross-column comparisons go through a translation into a
/// shared dictionary (see query::UniversalTable).
class EncodedRelation {
 public:
  static EncodedRelation FromRelation(const Relation& relation);

  /// Parallel variant: every column's encode runs through the chunked
  /// per-thread-dictionary path (see EncodeColumn(…, pool)); the mirror is
  /// bitwise-identical to the serial one at any thread count. This is what
  /// Catalog::GetEncoded uses for large relations.
  static EncodedRelation FromRelation(const Relation& relation,
                                      exec::ThreadPool* pool);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const EncodedColumn& column(size_t c) const { return columns_[c]; }
  uint32_t code(size_t row, size_t c) const { return columns_[c].codes[row]; }

  size_t ApproxBytes() const;

 private:
  std::vector<EncodedColumn> columns_;
  size_t num_rows_ = 0;
};

}  // namespace jim::rel

#endif  // JIM_RELATIONAL_DICTIONARY_H_
