#include "relational/csv_io.h"

#include "util/csv.h"
#include "util/string_util.h"

namespace jim::rel {

namespace {

ValueType InferColumnType(const std::vector<std::vector<std::string>>& records,
                          size_t column) {
  bool all_int = true;
  bool all_double = true;
  bool any_value = false;
  for (size_t r = 1; r < records.size(); ++r) {
    if (column >= records[r].size()) continue;
    const std::string& field = records[r][column];
    if (field.empty()) continue;
    any_value = true;
    if (all_int && !util::ParseInt64(field).ok()) all_int = false;
    if (all_double && !util::ParseDouble(field).ok()) all_double = false;
    if (!all_int && !all_double) break;
  }
  if (!any_value) return ValueType::kString;
  if (all_int) return ValueType::kInt64;
  if (all_double) return ValueType::kDouble;
  return ValueType::kString;
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  return base;
}

}  // namespace

util::StatusOr<Relation> RelationFromCsv(std::string_view name,
                                         std::string_view csv_content,
                                         char delim) {
  auto records = util::ParseCsv(csv_content, delim);
  if (!records.ok()) return records.status();
  if (records->empty()) {
    return util::InvalidArgumentError("CSV has no header record");
  }
  const std::vector<std::string>& header = (*records)[0];

  std::vector<Attribute> attributes;
  attributes.reserve(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    std::string column_name(util::StripWhitespace(header[c]));
    if (column_name.empty()) {
      return util::InvalidArgumentError(
          util::StrFormat("empty attribute name in CSV column %zu", c));
    }
    attributes.push_back(
        Attribute{std::move(column_name), InferColumnType(*records, c), ""});
  }

  Relation relation{std::string(name), Schema(std::move(attributes))};
  relation.Reserve(records->size() - 1);
  for (size_t r = 1; r < records->size(); ++r) {
    const auto& record = (*records)[r];
    if (record.size() != header.size()) {
      return util::InvalidArgumentError(util::StrFormat(
          "CSV record %zu has %zu fields, header has %zu", r, record.size(),
          header.size()));
    }
    Tuple row;
    row.reserve(record.size());
    for (size_t c = 0; c < record.size(); ++c) {
      row.push_back(ParseValueAs(record[c], relation.schema().attribute(c).type));
    }
    RETURN_IF_ERROR(relation.AddRow(std::move(row)));
  }
  return relation;
}

util::StatusOr<Relation> LoadRelationFromCsvFile(const std::string& path,
                                                 std::string_view name,
                                                 char delim) {
  ASSIGN_OR_RETURN(std::string content, util::ReadFileToString(path));
  const std::string relation_name =
      name.empty() ? Basename(path) : std::string(name);
  return RelationFromCsv(relation_name, content, delim);
}

std::string RelationToCsv(const Relation& relation, char delim) {
  std::string out =
      util::FormatCsvLine(relation.schema().Names(), delim) + "\n";
  for (const Tuple& row : relation.rows()) {
    std::vector<std::string> fields;
    fields.reserve(row.size());
    for (const Value& value : row) {
      fields.push_back(value.is_null() ? "" : value.ToString());
    }
    out += util::FormatCsvLine(fields, delim) + "\n";
  }
  return out;
}

util::Status SaveRelationToCsvFile(const Relation& relation,
                                   const std::string& path, char delim) {
  return util::WriteStringToFile(path, RelationToCsv(relation, delim));
}

}  // namespace jim::rel
