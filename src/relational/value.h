#ifndef JIM_RELATIONAL_VALUE_H_
#define JIM_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace jim::rel {

/// Runtime type of a Value.
enum class ValueType { kNull = 0, kInt64 = 1, kDouble = 2, kString = 3 };

std::string_view ValueTypeToString(ValueType type);

/// A dynamically typed SQL-style value: NULL, INT64, DOUBLE, or STRING.
///
/// Equality is *strict*: values of different types never compare equal
/// (columns get a single inferred type on load, so cross-type joins are not
/// meaningful), and NULL ≠ NULL, matching SQL join semantics — a tuple never
/// satisfies an equality on NULLs. `Compare` defines a total order (with
/// nulls first, then by type id, then by payload) used for sorting and
/// sort-merge joins.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Payload accessors. Calling the wrong one aborts (programming error).
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Strict typed equality; NULL is not equal to anything, itself included.
  bool Equals(const Value& other) const;

  /// Total order: -1 / 0 / +1. Nulls sort first and compare equal to each
  /// other *for ordering purposes only* (Equals stays false).
  int Compare(const Value& other) const;

  size_t Hash() const;

  /// Unquoted rendering ("NULL", "42", "3.14", "Paris").
  std::string ToString() const;

  /// SQL-literal rendering ("NULL", "42", "3.14", "'Paris'").
  std::string ToSqlLiteral() const;

  friend bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Parses `text` as the given type. Empty text parses as NULL.
/// Returns NULL (not an error) for empty strings of any type.
Value ParseValueAs(std::string_view text, ValueType type);

}  // namespace jim::rel

#endif  // JIM_RELATIONAL_VALUE_H_
