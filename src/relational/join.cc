#include "relational/join.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"
#include "util/string_util.h"

namespace jim::rel {

namespace {

util::Status ValidateKeys(const Relation& left, const Relation& right,
                          const JoinKeys& keys) {
  for (const auto& [l, r] : keys) {
    if (l >= left.num_attributes()) {
      return util::OutOfRangeError(util::StrFormat(
          "left join key %zu out of range (%zu attributes)", l,
          left.num_attributes()));
    }
    if (r >= right.num_attributes()) {
      return util::OutOfRangeError(util::StrFormat(
          "right join key %zu out of range (%zu attributes)", r,
          right.num_attributes()));
    }
  }
  return util::OkStatus();
}

Schema OutputSchema(const Relation& left, const Relation& right,
                    const JoinOptions& options) {
  return Schema::Concat(left.schema(), options.left_qualifier, right.schema(),
                        options.right_qualifier);
}

Tuple ConcatRows(const Tuple& left, const Tuple& right) {
  Tuple out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

/// True iff the key columns match under SQL semantics (no NULLs, all equal).
bool KeysMatch(const Tuple& left, const Tuple& right, const JoinKeys& keys) {
  for (const auto& [l, r] : keys) {
    if (!left[l].Equals(right[r])) return false;
  }
  return true;
}

/// Composite key for hashing; empty optional when any component is NULL.
struct HashKey {
  std::vector<Value> parts;

  bool operator==(const HashKey& other) const {
    if (parts.size() != other.parts.size()) return false;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (!parts[i].Equals(other.parts[i])) return false;
    }
    return true;
  }
};

struct HashKeyHasher {
  size_t operator()(const HashKey& key) const {
    size_t seed = key.parts.size();
    for (const Value& v : key.parts) util::HashCombine(seed, v.Hash());
    return seed;
  }
};

/// Extracts the composite key; returns false if any component is NULL
/// (such rows never join).
bool ExtractKey(const Tuple& row, const JoinKeys& keys, bool left_side,
                HashKey* out) {
  out->parts.clear();
  out->parts.reserve(keys.size());
  for (const auto& [l, r] : keys) {
    const Value& v = row[left_side ? l : r];
    if (v.is_null()) return false;
    out->parts.push_back(v);
  }
  return true;
}

}  // namespace

util::StatusOr<Relation> NestedLoopJoin(const Relation& left,
                                        const Relation& right,
                                        const JoinKeys& keys,
                                        const JoinOptions& options) {
  RETURN_IF_ERROR(ValidateKeys(left, right, keys));
  Relation result{options.result_name, OutputSchema(left, right, options)};
  for (const Tuple& l : left.rows()) {
    for (const Tuple& r : right.rows()) {
      if (KeysMatch(l, r, keys)) {
        result.AddRowUnchecked(ConcatRows(l, r));
      }
    }
  }
  return result;
}

util::StatusOr<Relation> HashJoin(const Relation& left, const Relation& right,
                                  const JoinKeys& keys,
                                  const JoinOptions& options) {
  RETURN_IF_ERROR(ValidateKeys(left, right, keys));
  if (keys.empty()) {
    // Degenerate: no key means Cartesian product semantics.
    return NestedLoopJoin(left, right, keys, options);
  }
  Relation result{options.result_name, OutputSchema(left, right, options)};

  // Build on the smaller side; probe with the larger.
  const bool build_left = left.num_rows() <= right.num_rows();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;

  std::unordered_map<HashKey, std::vector<size_t>, HashKeyHasher> table;
  table.reserve(build.num_rows());
  HashKey key;
  for (size_t i = 0; i < build.num_rows(); ++i) {
    if (ExtractKey(build.row(i), keys, /*left_side=*/build_left, &key)) {
      table[key].push_back(i);
    }
  }
  for (const Tuple& probe_row : probe.rows()) {
    if (!ExtractKey(probe_row, keys, /*left_side=*/!build_left, &key)) continue;
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (size_t build_index : it->second) {
      const Tuple& build_row = build.row(build_index);
      result.AddRowUnchecked(build_left ? ConcatRows(build_row, probe_row)
                                        : ConcatRows(probe_row, build_row));
    }
  }
  return result;
}

util::StatusOr<Relation> SortMergeJoin(const Relation& left,
                                       const Relation& right,
                                       const JoinKeys& keys,
                                       const JoinOptions& options) {
  RETURN_IF_ERROR(ValidateKeys(left, right, keys));
  if (keys.empty()) {
    return NestedLoopJoin(left, right, keys, options);
  }
  Relation result{options.result_name, OutputSchema(left, right, options)};

  // Index vectors sorted by composite key; NULL-keyed rows are dropped
  // up front (they can never match).
  auto make_order = [&keys](const Relation& relation, bool left_side) {
    std::vector<size_t> order;
    order.reserve(relation.num_rows());
    for (size_t i = 0; i < relation.num_rows(); ++i) {
      bool has_null = false;
      for (const auto& [l, r] : keys) {
        if (relation.row(i)[left_side ? l : r].is_null()) {
          has_null = true;
          break;
        }
      }
      if (!has_null) order.push_back(i);
    }
    auto compare_keys = [&](size_t a, size_t b) {
      for (const auto& [l, r] : keys) {
        const size_t column = left_side ? l : r;
        const int c = relation.row(a)[column].Compare(relation.row(b)[column]);
        if (c != 0) return c < 0;
      }
      return false;
    };
    std::sort(order.begin(), order.end(), compare_keys);
    return order;
  };
  const std::vector<size_t> left_order = make_order(left, true);
  const std::vector<size_t> right_order = make_order(right, false);

  auto compare_cross = [&](size_t li, size_t ri) {
    for (const auto& [l, r] : keys) {
      const int c = left.row(li)[l].Compare(right.row(ri)[r]);
      if (c != 0) return c;
    }
    return 0;
  };

  size_t i = 0;
  size_t j = 0;
  while (i < left_order.size() && j < right_order.size()) {
    const int c = compare_cross(left_order[i], right_order[j]);
    if (c < 0) {
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      // Emit the full group × group block.
      size_t i_end = i;
      while (i_end < left_order.size() &&
             compare_cross(left_order[i_end], right_order[j]) == 0) {
        ++i_end;
      }
      size_t j_end = j;
      while (j_end < right_order.size() &&
             compare_cross(left_order[i], right_order[j_end]) == 0) {
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          result.AddRowUnchecked(
              ConcatRows(left.row(left_order[a]), right.row(right_order[b])));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return result;
}

util::StatusOr<Relation> CrossProduct(const Relation& left,
                                      const Relation& right,
                                      const JoinOptions& options) {
  return NestedLoopJoin(left, right, /*keys=*/{}, options);
}

util::StatusOr<Relation> SampledCrossProduct(const Relation& left,
                                             const Relation& right,
                                             size_t sample_size,
                                             util::Rng& rng,
                                             const JoinOptions& options) {
  const size_t total = left.num_rows() * right.num_rows();
  if (total <= sample_size) {
    return CrossProduct(left, right, options);
  }
  Relation result{options.result_name, OutputSchema(left, right, options)};
  result.Reserve(sample_size);
  const std::vector<size_t> picks = rng.SampleIndices(total, sample_size);
  for (size_t flat : picks) {
    const size_t li = flat / right.num_rows();
    const size_t ri = flat % right.num_rows();
    result.AddRowUnchecked(ConcatRows(left.row(li), right.row(ri)));
  }
  return result;
}

}  // namespace jim::rel
