#include "relational/value.h"

#include <functional>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace jim::rel {

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

bool Value::Equals(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::kNull:
      return false;  // SQL semantics: NULL = NULL is not true.
    case ValueType::kInt64:
      return AsInt64() == other.AsInt64();
    case ValueType::kDouble:
      return AsDouble() == other.AsDouble();
    case ValueType::kString:
      return AsString() == other.AsString();
  }
  return false;
}

int Value::Compare(const Value& other) const {
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64: {
      const int64_t a = AsInt64();
      const int64_t b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kDouble: {
      const double a = AsDouble();
      const double b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
  }
  return 0;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type());
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      util::HashCombine(seed, AsInt64());
      break;
    case ValueType::kDouble:
      util::HashCombine(seed, AsDouble());
      break;
    case ValueType::kString:
      util::HashCombine(seed, AsString());
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return util::FormatDouble(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (type() != ValueType::kString) return ToString();
  std::string out = "'";
  for (char c : AsString()) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

Value ParseValueAs(std::string_view text, ValueType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      auto parsed = util::ParseInt64(text);
      JIM_CHECK(parsed.ok()) << "not an int64: '" << std::string(text) << "'";
      return Value(*parsed);
    }
    case ValueType::kDouble: {
      auto parsed = util::ParseDouble(text);
      JIM_CHECK(parsed.ok()) << "not a double: '" << std::string(text) << "'";
      return Value(*parsed);
    }
    case ValueType::kString:
      return Value(std::string(text));
  }
  return Value::Null();
}

}  // namespace jim::rel
