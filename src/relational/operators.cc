#include "relational/operators.h"

#include "util/string_util.h"

namespace jim::rel {

Relation Select(const Relation& input, const RowPredicate& predicate,
                std::string result_name) {
  Relation result{result_name.empty() ? input.name() : std::move(result_name),
                  input.schema()};
  for (const Tuple& row : input.rows()) {
    if (predicate(row)) result.AddRowUnchecked(row);
  }
  return result;
}

util::StatusOr<Relation> Project(const Relation& input,
                                 const std::vector<size_t>& indices,
                                 std::string result_name) {
  std::vector<Attribute> attributes;
  attributes.reserve(indices.size());
  for (size_t index : indices) {
    if (index >= input.num_attributes()) {
      return util::OutOfRangeError(util::StrFormat(
          "projection index %zu out of range (%zu attributes)", index,
          input.num_attributes()));
    }
    attributes.push_back(input.schema().attribute(index));
  }
  Relation result{result_name.empty() ? input.name() : std::move(result_name),
                  Schema(std::move(attributes))};
  result.Reserve(input.num_rows());
  for (const Tuple& row : input.rows()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (size_t index : indices) projected.push_back(row[index]);
    result.AddRowUnchecked(std::move(projected));
  }
  return result;
}

util::StatusOr<Relation> ProjectByName(const Relation& input,
                                       const std::vector<std::string>& names,
                                       std::string result_name) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    ASSIGN_OR_RETURN(size_t index, input.schema().IndexOf(name));
    indices.push_back(index);
  }
  return Project(input, indices, std::move(result_name));
}

Relation RenameRelation(const Relation& input, std::string new_name) {
  std::vector<Attribute> attributes = input.schema().attributes();
  for (Attribute& attribute : attributes) {
    attribute.qualifier = new_name;
  }
  Relation result{std::move(new_name), Schema(std::move(attributes))};
  result.Reserve(input.num_rows());
  for (const Tuple& row : input.rows()) {
    result.AddRowUnchecked(row);
  }
  return result;
}

size_t CountIf(const Relation& input, const RowPredicate& predicate) {
  size_t count = 0;
  for (const Tuple& row : input.rows()) {
    if (predicate(row)) ++count;
  }
  return count;
}

}  // namespace jim::rel
