#include "relational/dictionary.h"

#include <cmath>

#include "util/logging.h"

namespace jim::rel {

uint32_t Dictionary::GetOrAdd(const Value& value) {
  JIM_CHECK(!value.is_null()) << "NULL has no dictionary code (see kNullCode)";
  // NaN caveat: a NaN never compares equal to anything (Value::Equals is
  // IEEE ==), so every NaN occurrence mints a fresh code — exactly the
  // semantics the partition kernels need (NaN ≠ NaN, like NULL ≠ NULL). Mint
  // it directly: NaNs all hash alike but never compare equal, so letting
  // them into the map would grow one bucket's collision chain per
  // occurrence (quadratic encoding on NaN-heavy columns), and Find could
  // never return them anyway.
  const bool is_nan = value.type() == ValueType::kDouble &&
                      std::isnan(value.AsDouble());
  if (!is_nan) {
    auto [it, inserted] =
        code_of_.emplace(value, static_cast<uint32_t>(values_.size()));
    if (!inserted) return it->second;
  }
  JIM_CHECK_LT(values_.size(), size_t{kNullCode})
      << "dictionary overflow: too many distinct values for uint32 codes";
  values_.push_back(value);
  return static_cast<uint32_t>(values_.size() - 1);
}

std::optional<uint32_t> Dictionary::Find(const Value& value) const {
  if (value.is_null()) return std::nullopt;
  auto it = code_of_.find(value);
  if (it == code_of_.end()) return std::nullopt;
  return it->second;
}

size_t Dictionary::ApproxBytes() const {
  size_t bytes = values_.capacity() * sizeof(Value) +
                 code_of_.size() * (sizeof(Value) + sizeof(uint32_t) +
                                    2 * sizeof(void*));
  for (const Value& value : values_) {
    if (value.type() == ValueType::kString) bytes += value.AsString().size();
  }
  return bytes;
}

EncodedColumn EncodeColumn(const Relation& relation, size_t column) {
  JIM_CHECK_LT(column, relation.num_attributes());
  EncodedColumn encoded;
  encoded.codes.reserve(relation.num_rows());
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    const Value& value = relation.row(r)[column];
    encoded.codes.push_back(value.is_null()
                                ? kNullCode
                                : encoded.dictionary.GetOrAdd(value));
  }
  return encoded;
}

EncodedRelation EncodedRelation::FromRelation(const Relation& relation) {
  EncodedRelation encoded;
  encoded.num_rows_ = relation.num_rows();
  encoded.columns_.reserve(relation.num_attributes());
  for (size_t c = 0; c < relation.num_attributes(); ++c) {
    encoded.columns_.push_back(EncodeColumn(relation, c));
  }
  return encoded;
}

size_t EncodedRelation::ApproxBytes() const {
  size_t bytes = sizeof(EncodedRelation);
  for (const EncodedColumn& column : columns_) bytes += column.ApproxBytes();
  return bytes;
}

}  // namespace jim::rel
