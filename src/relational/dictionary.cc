#include "relational/dictionary.h"

#include <cmath>

#include "exec/thread_pool.h"
#include "util/logging.h"

namespace jim::rel {

uint32_t Dictionary::GetOrAdd(const Value& value) {
  JIM_CHECK(!value.is_null()) << "NULL has no dictionary code (see kNullCode)";
  // NaN caveat: a NaN never compares equal to anything (Value::Equals is
  // IEEE ==), so every NaN occurrence mints a fresh code — exactly the
  // semantics the partition kernels need (NaN ≠ NaN, like NULL ≠ NULL). Mint
  // it directly: NaNs all hash alike but never compare equal, so letting
  // them into the map would grow one bucket's collision chain per
  // occurrence (quadratic encoding on NaN-heavy columns), and Find could
  // never return them anyway.
  const bool is_nan = value.type() == ValueType::kDouble &&
                      std::isnan(value.AsDouble());
  if (!is_nan) {
    auto [it, inserted] =
        code_of_.emplace(value, static_cast<uint32_t>(values_.size()));
    if (!inserted) return it->second;
  }
  JIM_CHECK_LT(values_.size(), size_t{kNullCode})
      << "dictionary overflow: too many distinct values for uint32 codes";
  values_.push_back(value);
  return static_cast<uint32_t>(values_.size() - 1);
}

std::optional<uint32_t> Dictionary::Find(const Value& value) const {
  if (value.is_null()) return std::nullopt;
  auto it = code_of_.find(value);
  if (it == code_of_.end()) return std::nullopt;
  return it->second;
}

void Dictionary::CheckInvariants() const {
  size_t nan_values = 0;
  for (size_t c = 0; c < values_.size(); ++c) {
    const Value& value = values_[c];
    JIM_CHECK(!value.is_null()) << "NULL stored under code " << c;
    const bool is_nan = value.type() == ValueType::kDouble &&
                        std::isnan(value.AsDouble());
    if (is_nan) {
      // Fresh-code-per-occurrence discipline: NaNs bypass the reverse map.
      ++nan_values;
      continue;
    }
    const std::optional<uint32_t> found = Find(value);
    JIM_CHECK(found.has_value() && *found == c)
        << "value→code lookup of '" << value.ToString()
        << "' does not return its code " << c;
  }
  // Forward and reverse directions cover each other exactly (modulo NaNs):
  // every non-NaN code looked itself up above, so a size match means the
  // reverse map holds those entries and nothing else.
  JIM_CHECK_EQ(code_of_.size() + nan_values, values_.size())
      << "reverse map out of step with the value table";
}

size_t Dictionary::ApproxBytes() const {
  size_t bytes = values_.capacity() * sizeof(Value) +
                 code_of_.size() * (sizeof(Value) + sizeof(uint32_t) +
                                    2 * sizeof(void*));
  for (const Value& value : values_) {
    if (value.type() == ValueType::kString) bytes += value.AsString().size();
  }
  return bytes;
}

EncodedColumn EncodeColumn(const Relation& relation, size_t column) {
  JIM_CHECK_LT(column, relation.num_attributes());
  EncodedColumn encoded;
  encoded.codes.reserve(relation.num_rows());
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    const Value& value = relation.row(r)[column];
    encoded.codes.push_back(value.is_null()
                                ? kNullCode
                                : encoded.dictionary.GetOrAdd(value));
  }
  return encoded;
}

std::vector<std::vector<uint32_t>> MergeChunkDictionaries(
    const std::vector<Dictionary>& chunks, Dictionary& target) {
  std::vector<std::vector<uint32_t>> remaps(chunks.size());
  for (size_t j = 0; j < chunks.size(); ++j) {
    remaps[j].resize(chunks[j].size());
    for (uint32_t local = 0; local < chunks[j].size(); ++local) {
      // GetOrAdd in chunk order = global first-occurrence order; NaN values
      // mint one fresh code per chunk-local code, i.e. per occurrence —
      // exactly the serial discipline.
      remaps[j][local] = target.GetOrAdd(chunks[j].value(local));
    }
  }
  return remaps;
}

EncodedColumn EncodeColumn(const Relation& relation, size_t column,
                           exec::ThreadPool* pool) {
  if (pool == nullptr || pool->threads() <= 1 ||
      relation.num_rows() < kParallelIngestMinRows) {
    return EncodeColumn(relation, column);
  }
  JIM_CHECK_LT(column, relation.num_attributes());
  const size_t rows = relation.num_rows();
  EncodedColumn encoded;
  encoded.codes.assign(rows, 0);
  // Phase 1: each static chunk encodes its contiguous row range into its own
  // dictionary (codes are chunk-local for now). Chunk assignment depends
  // only on (rows, threads), so the two ParallelFors below see identical
  // chunking.
  std::vector<Dictionary> chunk_dictionaries(pool->threads());
  pool->ParallelFor(rows, [&](size_t r, size_t chunk) {
    const Value& value = relation.row(r)[column];
    encoded.codes[r] = value.is_null()
                           ? kNullCode
                           : chunk_dictionaries[chunk].GetOrAdd(value);
  });
  // Phase 2 (serial): merge in chunk order. Phase 3: rewrite in parallel.
  const std::vector<std::vector<uint32_t>> remaps =
      MergeChunkDictionaries(chunk_dictionaries, encoded.dictionary);
  pool->ParallelFor(rows, [&](size_t r, size_t chunk) {
    uint32_t& code = encoded.codes[r];
    if (code != kNullCode) code = remaps[chunk][code];
  });
  return encoded;
}

EncodedRelation EncodedRelation::FromRelation(const Relation& relation) {
  return FromRelation(relation, /*pool=*/nullptr);
}

EncodedRelation EncodedRelation::FromRelation(const Relation& relation,
                                              exec::ThreadPool* pool) {
  EncodedRelation encoded;
  encoded.num_rows_ = relation.num_rows();
  encoded.columns_.reserve(relation.num_attributes());
  for (size_t c = 0; c < relation.num_attributes(); ++c) {
    encoded.columns_.push_back(EncodeColumn(relation, c, pool));
  }
  return encoded;
}

size_t EncodedRelation::ApproxBytes() const {
  size_t bytes = sizeof(EncodedRelation);
  for (const EncodedColumn& column : columns_) bytes += column.ApproxBytes();
  return bytes;
}

}  // namespace jim::rel
