#include "relational/schema.h"

#include "util/string_util.h"

namespace jim::rel {

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<Attribute> attributes;
  attributes.reserve(names.size());
  for (const std::string& name : names) {
    attributes.push_back(Attribute{name, ValueType::kString, ""});
  }
  return Schema(std::move(attributes));
}

util::StatusOr<size_t> Schema::IndexOf(std::string_view name) const {
  size_t found = attributes_.size();
  size_t matches = 0;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name || attributes_[i].QualifiedName() == name) {
      found = i;
      ++matches;
    }
  }
  if (matches == 0) {
    return util::NotFoundError("no attribute named '" + std::string(name) + "'");
  }
  if (matches > 1) {
    return util::InvalidArgumentError("ambiguous attribute name '" +
                                      std::string(name) +
                                      "'; use the qualified form");
  }
  return found;
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& attribute : attributes_) {
    names.push_back(attribute.QualifiedName());
  }
  return names;
}

Schema Schema::Concat(const Schema& left, std::string_view left_qualifier,
                      const Schema& right, std::string_view right_qualifier) {
  std::vector<Attribute> attributes;
  attributes.reserve(left.num_attributes() + right.num_attributes());
  for (const Attribute& attribute : left.attributes()) {
    Attribute combined = attribute;
    if (!left_qualifier.empty()) combined.qualifier = std::string(left_qualifier);
    attributes.push_back(std::move(combined));
  }
  for (const Attribute& attribute : right.attributes()) {
    Attribute combined = attribute;
    if (!right_qualifier.empty()) combined.qualifier = std::string(right_qualifier);
    attributes.push_back(std::move(combined));
  }
  return Schema(std::move(attributes));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size());
  for (const Attribute& attribute : attributes_) {
    parts.push_back(attribute.QualifiedName() + ":" +
                    std::string(ValueTypeToString(attribute.type)));
  }
  return "(" + util::Join(parts, ", ") + ")";
}

}  // namespace jim::rel
