#ifndef JIM_RELATIONAL_JOIN_H_
#define JIM_RELATIONAL_JOIN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "relational/relation.h"
#include "util/rng.h"
#include "util/status.h"

namespace jim::rel {

/// An equi-join condition: left.attribute[first] = right.attribute[second].
using JoinKeys = std::vector<std::pair<size_t, size_t>>;

/// Options shared by all join algorithms.
struct JoinOptions {
  /// Qualifiers applied to the output schema sides; empty keeps existing.
  std::string left_qualifier;
  std::string right_qualifier;
  std::string result_name = "join";

  /// Options that only set the result relation's name.
  static JoinOptions Named(std::string name) {
    JoinOptions options;
    options.result_name = std::move(name);
    return options;
  }
};

/// Θ(|L|·|R|) baseline; reference implementation the hash and sort-merge
/// joins are property-tested against.
util::StatusOr<Relation> NestedLoopJoin(const Relation& left,
                                        const Relation& right,
                                        const JoinKeys& keys,
                                        const JoinOptions& options = {});

/// Classic build/probe hash join (build on the smaller input). NULL keys
/// never match (SQL semantics).
util::StatusOr<Relation> HashJoin(const Relation& left, const Relation& right,
                                  const JoinKeys& keys,
                                  const JoinOptions& options = {});

/// Sort-merge join on the composite key (copies and sorts both inputs).
util::StatusOr<Relation> SortMergeJoin(const Relation& left,
                                       const Relation& right,
                                       const JoinKeys& keys,
                                       const JoinOptions& options = {});

/// Full Cartesian product L × R. This is how JIM builds the space of
/// candidate tuples when the user supplies separate relations with no
/// integrity constraints.
util::StatusOr<Relation> CrossProduct(const Relation& left,
                                      const Relation& right,
                                      const JoinOptions& options = {});

/// Uniform sample (without replacement) of `sample_size` rows of L × R —
/// used to keep interactive instances tractable when |L|·|R| explodes.
/// Returns the full product if it has at most `sample_size` rows.
util::StatusOr<Relation> SampledCrossProduct(const Relation& left,
                                             const Relation& right,
                                             size_t sample_size,
                                             util::Rng& rng,
                                             const JoinOptions& options = {});

}  // namespace jim::rel

#endif  // JIM_RELATIONAL_JOIN_H_
