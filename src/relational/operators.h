#ifndef JIM_RELATIONAL_OPERATORS_H_
#define JIM_RELATIONAL_OPERATORS_H_

#include <functional>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/status.h"

namespace jim::rel {

/// Row predicate used by Select.
using RowPredicate = std::function<bool(const Tuple&)>;

/// σ: rows of `input` satisfying `predicate`, same schema.
Relation Select(const Relation& input, const RowPredicate& predicate,
                std::string result_name = "");

/// π: keeps columns at `indices` in the given order (duplicates allowed).
/// Errors on out-of-range indices.
util::StatusOr<Relation> Project(const Relation& input,
                                 const std::vector<size_t>& indices,
                                 std::string result_name = "");

/// π by attribute names (bare or qualified).
util::StatusOr<Relation> ProjectByName(const Relation& input,
                                       const std::vector<std::string>& names,
                                       std::string result_name = "");

/// ρ: a copy with a new relation name and all attributes requalified to it.
Relation RenameRelation(const Relation& input, std::string new_name);

/// Counts rows satisfying `predicate` without materializing.
size_t CountIf(const Relation& input, const RowPredicate& predicate);

}  // namespace jim::rel

#endif  // JIM_RELATIONAL_OPERATORS_H_
