#ifndef JIM_RELATIONAL_RELATION_H_
#define JIM_RELATIONAL_RELATION_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "util/status.h"

namespace jim::rel {

/// One row: values positionally aligned with a Schema.
using Tuple = std::vector<Value>;

/// Hash of a full tuple (order-sensitive).
size_t TupleHash(const Tuple& tuple);

/// True iff all corresponding fields are Equals (strict; any NULL ⇒ false on
/// that field).
bool TupleEquals(const Tuple& a, const Tuple& b);

/// Lexicographic comparison using Value::Compare.
int TupleCompare(const Tuple& a, const Tuple& b);

/// Representation-level key of a tuple: two tuples get equal keys iff they
/// render identically field by field (same types, same printed payloads —
/// NULLs *are* equal here, unlike join semantics). This is the equality
/// Relation::DeduplicateRows uses; the factorized universal-table builder
/// shares it so its dedup is byte-identical to the materialized path.
std::string TupleRepresentationKey(const Tuple& tuple);

/// An in-memory table: a name, a schema, and rows.
///
/// This is the storage substrate for JIM. The demo paper's system sits on a
/// live database; here the catalog is CSV/in-memory, which is equivalent for
/// the inference algorithm (it only consumes tuples — see DESIGN.md §3,
/// Substitutions).
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  size_t num_rows() const { return rows_.size(); }
  size_t num_attributes() const { return schema_.num_attributes(); }
  bool empty() const { return rows_.empty(); }

  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a row after checking arity and per-column type (NULL is allowed
  /// in any column).
  util::Status AddRow(Tuple row);

  /// Appends without validation — for operators that construct rows from
  /// already-validated inputs.
  void AddRowUnchecked(Tuple row) { rows_.push_back(std::move(row)); }

  void Reserve(size_t n) { rows_.reserve(n); }
  void Clear() { rows_.clear(); }

  /// Sorts rows lexicographically (stable order for reproducible output).
  void SortRows();

  /// Removes duplicate rows (by representation: NULLs considered identical
  /// here, unlike join semantics). Keeps first occurrences; preserves order.
  void DeduplicateRows();

  /// Renders the first `max_rows` rows as an aligned ASCII table.
  std::string ToString(size_t max_rows = 50) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace jim::rel

#endif  // JIM_RELATIONAL_RELATION_H_
