#include "relational/catalog.h"

#include "exec/parallel.h"

namespace jim::rel {

Catalog::Catalog(const Catalog& other) {
  std::lock_guard<std::mutex> lock(other.encoded_mutex_);
  relations_ = other.relations_;
  encoded_ = other.encoded_;
}

Catalog& Catalog::operator=(const Catalog& other) {
  if (this == &other) return *this;
  // Consistent-order double lock is unnecessary: assignment of a catalog
  // that is concurrently *mutated* is outside the contract (like any
  // container); the lock only keeps the encoded cache snapshot coherent
  // against concurrent GetEncoded fills on `other`.
  std::lock_guard<std::mutex> lock(other.encoded_mutex_);
  relations_ = other.relations_;
  encoded_ = other.encoded_;
  return *this;
}

util::Status Catalog::Add(Relation relation) {
  const std::string name = relation.name();
  if (name.empty()) {
    return util::InvalidArgumentError("relation must be named");
  }
  auto [it, inserted] = relations_.emplace(
      name, std::make_shared<const Relation>(std::move(relation)));
  if (!inserted) {
    return util::AlreadyExistsError("relation '" + name + "' already exists");
  }
  return util::OkStatus();
}

void Catalog::AddOrReplace(Relation relation) {
  const std::string name = relation.name();
  relations_.insert_or_assign(
      name, std::make_shared<const Relation>(std::move(relation)));
  std::lock_guard<std::mutex> lock(encoded_mutex_);
  encoded_.erase(name);
}

util::StatusOr<const Relation*> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return util::NotFoundError("no relation named '" + name + "'");
  }
  return it->second.get();
}

util::StatusOr<std::shared_ptr<const Relation>> Catalog::GetShared(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return util::NotFoundError("no relation named '" + name + "'");
  }
  return it->second;
}

util::StatusOr<std::shared_ptr<const EncodedRelation>> Catalog::GetEncoded(
    const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(encoded_mutex_);
    auto cached = encoded_.find(name);
    if (cached != encoded_.end()) return cached->second;
  }
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return util::NotFoundError("no relation named '" + name + "'");
  }
  // Encode outside the lock (it is the expensive part); a racing encoder of
  // the same relation produces an identical mirror and the first insert
  // wins, so concurrent first-use is merely redundant work, never UB.
  // Large relations encode on the shared pool (codes are bitwise-identical
  // to serial at any thread count); small ones stay serial so a tiny
  // catalog never spins the process-wide pool up. Caveat: like any shared
  // pool use, first-time GetEncoded must not be called from inside a
  // SharedPool ParallelFor task (nested use of one pool is rejected).
  exec::ThreadPool* pool = it->second->num_rows() >= kParallelIngestMinRows
                               ? &exec::SharedPool()
                               : nullptr;
  auto encoded = std::make_shared<const EncodedRelation>(
      EncodedRelation::FromRelation(*it->second, pool));
  std::lock_guard<std::mutex> lock(encoded_mutex_);
  auto [cached, inserted] = encoded_.emplace(name, std::move(encoded));
  return cached->second;
}

util::Status Catalog::Drop(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return util::NotFoundError("no relation named '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(encoded_mutex_);
  encoded_.erase(name);
  return util::OkStatus();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace jim::rel
