#include "relational/catalog.h"

namespace jim::rel {

util::Status Catalog::Add(Relation relation) {
  const std::string name = relation.name();
  if (name.empty()) {
    return util::InvalidArgumentError("relation must be named");
  }
  auto [it, inserted] = relations_.emplace(name, std::move(relation));
  if (!inserted) {
    return util::AlreadyExistsError("relation '" + name + "' already exists");
  }
  return util::OkStatus();
}

void Catalog::AddOrReplace(Relation relation) {
  const std::string name = relation.name();
  relations_.insert_or_assign(name, std::move(relation));
}

util::StatusOr<const Relation*> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return util::NotFoundError("no relation named '" + name + "'");
  }
  return &it->second;
}

util::Status Catalog::Drop(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return util::NotFoundError("no relation named '" + name + "'");
  }
  return util::OkStatus();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace jim::rel
