#ifndef JIM_RELATIONAL_SCHEMA_H_
#define JIM_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "relational/value.h"
#include "util/status.h"

namespace jim::rel {

/// One column: a name, an optional relation qualifier (set when schemas are
/// concatenated into a universal table, so "Hotels.City" and "Flights.City"
/// stay distinguishable), and a type.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;
  /// Originating relation, empty for unqualified attributes.
  std::string qualifier;

  /// "City" or "Hotels.City".
  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.name == b.name && a.type == b.type && a.qualifier == b.qualifier;
  }
};

/// An ordered list of attributes. Lookup accepts either the bare name (when
/// unambiguous) or the qualified "Relation.name" form.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  /// Convenience: untyped (STRING) attributes from names.
  static Schema FromNames(const std::vector<std::string>& names);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  void AddAttribute(Attribute attribute) {
    attributes_.push_back(std::move(attribute));
  }

  /// Index of the attribute named `name` (bare or qualified). Errors if the
  /// name is unknown or ambiguous.
  util::StatusOr<size_t> IndexOf(std::string_view name) const;

  /// All attribute names, qualified where a qualifier is present.
  std::vector<std::string> Names() const;

  /// Schema for `left` ++ `right` with the given qualifiers applied to each
  /// side (pass "" to keep existing qualifiers).
  static Schema Concat(const Schema& left, std::string_view left_qualifier,
                       const Schema& right, std::string_view right_qualifier);

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attributes_ == b.attributes_;
  }

  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace jim::rel

#endif  // JIM_RELATIONAL_SCHEMA_H_
